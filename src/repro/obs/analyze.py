"""Counter baselines and regression diffs over a fixed profile suite.

The engines' counters are deterministic -- pure functions of the
program, the goal, and the search strategy (see
``tests/obs/test_engine_counters.py``) -- so a committed snapshot of
them *is* a perf contract: any drift in ``search.configs_expanded`` /
``table.misses`` / ``unify.attempts`` means the evaluators' work
changed, long before wall time shows it on a noisy CI box.

Three pieces:

* :func:`profile_suite` -- the fixed, named workloads the baselines
  cover: one per engine family (nonrecursive, tabled sequential,
  full-TD BFS, fully-bounded search, workflow simulation), built from
  the paper's own examples so the gate tracks the programs the repo is
  *about*.
* :func:`write_baselines` -- run each workload instrumented and write
  ``<name>.json`` per config (``tdlog profile baseline``).
* :func:`diff_baselines` -- re-run and compare against the committed
  snapshots with per-counter tolerances (``tdlog profile diff``); any
  out-of-tolerance drift, in either direction, is a failure.  A PR that
  legitimately moves a counter regenerates the baseline in the same
  change, so the delta is reviewed where it happens.

Tolerances are *relative* (fraction of the baseline value).  The
default is exact (0.0) because the counters are deterministic; CI keeps
it that way.  ``--tolerance``/``--counter name=frac`` exist for local
what-if runs and for any future counter that turns out to be
environment-sensitive.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .context import Instrumentation, instrumented

__all__ = [
    "ProfileConfig",
    "Delta",
    "DiffReport",
    "profile_suite",
    "capture_snapshot",
    "write_baselines",
    "load_baseline",
    "diff_snapshot",
    "diff_baselines",
    "render_diff",
]

#: Baseline file schema version (bump on shape changes).
SCHEMA = 1

#: Default location for committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")


@dataclass(frozen=True)
class ProfileConfig:
    """One named, deterministic workload in the profile suite."""

    name: str
    description: str
    run: Callable[[], None]


# -- the fixed workloads ------------------------------------------------------
#
# Engine imports stay inside the builders: ``repro.core`` imports
# ``repro.obs`` at module load, so importing it here at module level
# would be circular.

_BANK_TD = """
transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
withdraw(Acct, Amt) <-
    balance(Acct, Bal) * Bal >= Amt *
    del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
deposit(Acct, Amt) <-
    balance(Acct, Bal) *
    del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""

_PATH_TD = """
path(X, Y) <- e(X, Y).
path(X, Y) <- e(X, Z) * path(Z, Y).
"""

_GENOME_TD = """
simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
simulate <- not workitem(_).
workflow(W) <- prep(W) * (load_gel(W) | label(W)) * read_gel(W).
prep(W) <-
    available(A) * qualified(A, tech) * del.available(A) *
    ins.done(prep, W, A) * ins.available(A).
load_gel(W) <-
    available(A) * qualified(A, tech) * del.available(A) *
    ins.done(load_gel, W, A) * ins.available(A).
label(W) <- ins.done(label, W, auto).
read_gel(W) <-
    available(A) * qualified(A, reader) * del.available(A) *
    ins.done(read_gel, W, A) * ins.available(A).
"""

_GENOME_FACTS = """
workitem(dna01). workitem(dna02).
available(ana). available(raj).
qualified(ana, tech). qualified(raj, tech). qualified(raj, reader).
"""


def _run_bank() -> None:
    from ..core import parse_database, parse_goal, parse_program, select_engine

    engine = select_engine(parse_program(_BANK_TD), "transfer(a, b, 30)")
    db = parse_database("balance(a, 100). balance(b, 10).")
    assert len(list(engine.solve(parse_goal("transfer(a, b, 30)"), db))) == 1


def _run_path() -> None:
    # Ground start + acyclic chain: the tabled engine's counters are
    # exactly reproducible across processes for this shape (the
    # all-pairs query on a cyclic graph is not -- fixpoint visit order
    # leaks hash randomization into hit/recompute counts).
    from ..core import parse_database, parse_goal, parse_program, select_engine

    engine = select_engine(parse_program(_PATH_TD), "path(a, X)")
    db = parse_database("e(a, b). e(b, c). e(c, d). e(d, e). e(e, f).")
    assert len(list(engine.solve(parse_goal("path(a, X)"), db))) == 5


def _run_genome() -> None:
    from ..core import parse_database, parse_goal, parse_program, select_engine

    engine = select_engine(parse_program(_GENOME_TD), "simulate")
    db = parse_database(_GENOME_FACTS)
    assert engine.simulate(parse_goal("simulate"), db) is not None


def _run_genome_statespace() -> None:
    from ..core import parse_database, parse_program
    from ..verify import explore

    graph = explore(
        parse_program(_GENOME_TD),
        "simulate",
        parse_database("workitem(dna01). available(raj). "
                       "qualified(raj, tech). qualified(raj, reader)."),
        max_states=50_000,
    )
    assert graph.final_ids


def _run_lab_workflow() -> None:
    from ..lims import build_lab_simulator, sample_batch

    sim = build_lab_simulator()
    result = sim.run(sample_batch(3))
    assert len(result.completed("analyze")) == 3


_FANOUT_TD = """
spawn <- item(I) * del.item(I) * (job(I) | spawn).
spawn <- not item(_).
job(I) <- ins.started(I) * ins.finished(I).
"""


def _run_conc_fanout() -> None:
    # Concurrent fan-out stressor for the partial-order reducer: each
    # work item spawns an insert-only job branch that runs alongside the
    # recursive spawner.  The job branches commute with everything, so
    # the ample-set pruner serializes them; without reduction the BFS
    # enumerates every interleaving (docs/PERFORMANCE.md).  Ground start
    # keeps the counters hash-seed deterministic.
    from ..core import parse_database, parse_goal, parse_program, select_engine

    engine = select_engine(parse_program(_FANOUT_TD), "spawn")
    db = parse_database("item(j1). item(j2). item(j3). item(j4). item(j5).")
    assert len(list(engine.solve(parse_goal("spawn"), db))) == 1


_RECURSIVE_TD = """
reach(X) <- sink(X).
reach(X) <- edge(X, Z) * reach(Z) * node(X).
audit <- reach(s0) * (stamp(left) | stamp(right)).
stamp(T) <- ins.audited(T).
"""


def _recursive_facts(depth: int = 7) -> str:
    """A chain of *depth* diamonds: s0 -> {a0,b0} -> s1 -> ... -> sink.

    Every diamond doubles the naive proof count of ``reach(s0)`` while
    the join nodes collapse under answer tabling, so the config's
    headline ratio (naive vs tabled expansions) grows exponentially
    with depth.  Facts live in the database -- not the program -- so
    the untabled run pays its re-derivations in ``unify.attempts``
    (database matching), which the rulebase's head-match memo would
    otherwise hide.
    """
    facts = []
    for i in range(depth):
        s, a, b, t = "s%d" % i, "a%d" % i, "b%d" % i, "s%d" % (i + 1)
        facts += ["edge(%s, %s)." % (s, a), "edge(%s, %s)." % (s, b),
                  "edge(%s, %s)." % (a, t), "edge(%s, %s)." % (b, t)]
        facts += ["node(%s)." % n for n in (s, a, b)]
    facts.append("node(s%d)." % depth)
    facts.append("sink(s%d)." % depth)
    return " ".join(facts)


def _run_recursive_workflow() -> None:
    # Non-tail recursion over a diamond DAG with a concurrent stamping
    # tail: the join nodes are re-reached along exponentially many
    # paths, all served from the answer table after the first proof
    # (docs/PERFORMANCE.md, "Tabling the concurrent interpreter").
    # Ground start + acyclic DAG keep the counters hash-seed
    # deterministic, like the other full-TD configs.
    from ..core import parse_database, parse_goal, parse_program, select_engine

    engine = select_engine(parse_program(_RECURSIVE_TD), "audit")
    db = parse_database(_recursive_facts())
    assert len(list(engine.solve(parse_goal("audit"), db))) == 1


def _run_chaos_faults() -> None:
    # A small, fixed slice of the chaos suite (docs/ROBUSTNESS.md).  The
    # injector is seed-deterministic and holds no RNG of its own, so the
    # ``faults.*`` counters -- ticks consumed, steps dropped, reordered
    # expansions -- are exactly reproducible and baseline-gated like any
    # other engine counter.
    from ..faults import run_chaos, workload_by_name

    reports = run_chaos(
        [workload_by_name("bank_transfer"), workload_by_name("genome_iso")],
        plans=6,
        base_seed=0,
    )
    assert not any(report.violations for report in reports)


def profile_suite() -> List[ProfileConfig]:
    """The fixed workloads the committed baselines cover, one per
    engine family, all drawn from the paper's running examples."""
    return [
        ProfileConfig(
            "bank_transfer",
            "Examples 2.1-2.2 nested banking transfer (nonrecursive engine, iso)",
            _run_bank,
        ),
        ProfileConfig(
            "path_tabled",
            "transitive closure, all pairs (tabled sequential engine)",
            _run_path,
        ),
        ProfileConfig(
            "genome_simulate",
            "Examples 3.1-3.3 genome lab, 2 samples (full-TD DFS scheduler)",
            _run_genome,
        ),
        ProfileConfig(
            "genome_statespace",
            "genome lab, 1 sample: exhaustive configuration graph (verifier)",
            _run_genome_statespace,
        ),
        ProfileConfig(
            "lab_workflow_batch3",
            "compiled genome-lab workflow, batch of 3 (workflow simulator)",
            _run_lab_workflow,
        ),
        ProfileConfig(
            "conc_fanout",
            "5-item concurrent fan-out (full-TD BFS, partial-order reduction)",
            _run_conc_fanout,
        ),
        ProfileConfig(
            "recursive_workflow",
            "depth-7 diamond-DAG reachability audit (full-TD BFS, answer tabling)",
            _run_recursive_workflow,
        ),
        ProfileConfig(
            "chaos_faults",
            "seeded fault-injection slice: bank + iso genome, 6 plans each",
            _run_chaos_faults,
        ),
    ]


def suite_config(name: str) -> ProfileConfig:
    for config in profile_suite():
        if config.name == name:
            return config
    raise KeyError(
        "unknown profile config %r (have: %s)"
        % (name, ", ".join(c.name for c in profile_suite()))
    )


# -- capture ------------------------------------------------------------------


def capture_snapshot(config: ProfileConfig) -> Dict[str, object]:
    """Run *config* under fresh instrumentation; return its baseline
    record (deterministic parts only -- no timers)."""
    inst = Instrumentation.create()
    with instrumented(inst):
        config.run()
    snapshot = inst.metrics.snapshot(include_timers=False)
    return {
        "schema": SCHEMA,
        "config": config.name,
        "description": config.description,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "info": snapshot["info"],
    }


def write_baselines(
    out_dir: str, configs: Optional[Sequence[ProfileConfig]] = None
) -> List[str]:
    """Capture every suite config and write ``<name>.json`` files;
    returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for config in configs if configs is not None else profile_suite():
        record = capture_snapshot(config)
        path = os.path.join(out_dir, config.name + ".json")
        with open(path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def load_baseline(path: str) -> Dict[str, object]:
    with open(path) as handle:
        record = json.load(handle)
    if record.get("schema") != SCHEMA:
        raise ValueError(
            "%s: baseline schema %r, expected %r -- regenerate with "
            "'tdlog profile baseline'" % (path, record.get("schema"), SCHEMA)
        )
    return record


# -- diff ---------------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One compared value: a counter, gauge, or info fact."""

    kind: str  # "counter" | "gauge" | "info"
    name: str
    baseline: object
    current: object
    status: str  # "ok" | "regressed" | "improved" | "changed" | "new" | "missing"

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new")


@dataclass
class DiffReport:
    """All deltas for one profile config."""

    config: str
    deltas: List[Delta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(d.ok for d in self.deltas)

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if not d.ok]


def _within(base: float, cur: float, tolerance: float) -> bool:
    if base == cur:
        return True
    allowance = abs(base) * tolerance
    return abs(cur - base) <= allowance


def _numeric_deltas(
    kind: str,
    base: Dict[str, float],
    cur: Dict[str, float],
    tolerances: Dict[str, float],
    default_tolerance: float,
) -> List[Delta]:
    deltas = []
    for name in sorted(set(base) | set(cur)):
        tolerance = tolerances.get(name, default_tolerance)
        if name not in base:
            deltas.append(Delta(kind, name, None, cur[name], "new"))
        elif name not in cur:
            deltas.append(Delta(kind, name, base[name], None, "missing"))
        elif _within(base[name], cur[name], tolerance):
            deltas.append(Delta(kind, name, base[name], cur[name], "ok"))
        else:
            status = "regressed" if cur[name] > base[name] else "improved"
            deltas.append(Delta(kind, name, base[name], cur[name], status))
    return deltas


def diff_snapshot(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerances: Optional[Dict[str, float]] = None,
    default_tolerance: float = 0.0,
) -> DiffReport:
    """Compare a current capture against a baseline record.

    Counters and gauges compare numerically under the tolerance model;
    ``info`` facts (engine backend, sublanguage) must match exactly --
    a workload silently landing on a different engine is drift of the
    worst kind.  More work than baseline is ``regressed``, less is
    ``improved``; *both* fail the gate, because an unexplained
    improvement usually means the workload stopped doing the work the
    baseline measured.
    """
    tolerances = tolerances or {}
    report = DiffReport(config=str(baseline.get("config", "?")))
    for kind in ("counters", "gauges"):
        report.deltas.extend(
            _numeric_deltas(
                kind[:-1],
                dict(baseline.get(kind) or {}),
                dict(current.get(kind) or {}),
                tolerances,
                default_tolerance,
            )
        )
    base_info = dict(baseline.get("info") or {})
    cur_info = dict(current.get("info") or {})
    for name in sorted(set(base_info) | set(cur_info)):
        if name not in base_info:
            report.deltas.append(Delta("info", name, None, cur_info[name], "new"))
        elif name not in cur_info:
            report.deltas.append(Delta("info", name, base_info[name], None, "missing"))
        else:
            status = "ok" if base_info[name] == cur_info[name] else "changed"
            report.deltas.append(
                Delta("info", name, base_info[name], cur_info[name], status)
            )
    return report


def diff_baselines(
    baseline_dir: str,
    tolerances: Optional[Dict[str, float]] = None,
    default_tolerance: float = 0.0,
    configs: Optional[Sequence[ProfileConfig]] = None,
) -> Tuple[List[DiffReport], List[str]]:
    """Re-run the suite and diff each config against its committed
    baseline.  Returns (reports, problems); *problems* lists configs
    with no baseline on disk (which also fails the gate -- an untracked
    workload is an unguarded one)."""
    reports: List[DiffReport] = []
    problems: List[str] = []
    for config in configs if configs is not None else profile_suite():
        path = os.path.join(baseline_dir, config.name + ".json")
        if not os.path.exists(path):
            problems.append(
                "%s: no baseline at %s (run 'tdlog profile baseline')"
                % (config.name, path)
            )
            continue
        baseline = load_baseline(path)
        current = capture_snapshot(config)
        reports.append(
            diff_snapshot(baseline, current, tolerances, default_tolerance)
        )
    return reports, problems


# -- rendering ----------------------------------------------------------------


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return "%g" % value
    if isinstance(value, float):
        return str(int(value))
    return str(value)


def render_diff(
    reports: Sequence[DiffReport],
    problems: Sequence[str] = (),
    verbose: bool = False,
) -> str:
    """The diff as an aligned text table: failures always, matches with
    ``verbose=True``."""
    lines: List[str] = []
    total = sum(len(r.deltas) for r in reports)
    failed = sum(len(r.failures) for r in reports)
    for report in reports:
        shown = report.deltas if verbose else report.failures
        header = "%s: %s" % (
            report.config,
            "ok (%d values)" % len(report.deltas) if report.ok else "DRIFT",
        )
        lines.append(header)
        width = max((len(d.name) for d in shown), default=0)
        for delta in shown:
            lines.append(
                "  %-9s %-*s  %s -> %s  [%s]"
                % (
                    delta.status,
                    width,
                    delta.name,
                    _format_value(delta.baseline),
                    _format_value(delta.current),
                    delta.kind,
                )
            )
    for problem in problems:
        lines.append("MISSING   %s" % problem)
    lines.append(
        "profile diff: %d config(s), %d value(s) compared, %d out of tolerance%s"
        % (
            len(reports),
            total,
            failed,
            ", %d missing baseline(s)" % len(problems) if problems else "",
        )
    )
    return "\n".join(lines)


def parse_tolerance_overrides(pairs: Sequence[str]) -> Dict[str, float]:
    """Parse ``name=frac`` CLI override strings into a tolerance map."""
    out: Dict[str, float] = {}
    for pair in pairs:
        name, sep, frac = pair.partition("=")
        if not sep or not name:
            raise ValueError("expected name=fraction, got %r" % pair)
        out[name] = float(frac)
    return out
