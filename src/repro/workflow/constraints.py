"""Intertask dependencies: specification and checking.

The transactional-workflow literature the paper engages (Attie, Singh,
Sheth & Rusinkiewicz: "Specifying and enforcing intertask dependencies")
expresses correctness of workflows as ordering/occurrence constraints
between tasks.  This module provides the common constraint forms over
our execution histories:

* :class:`Before` -- if both tasks run on an item, one precedes the
  other;
* :class:`Requires` -- a task may run on an item only if another ran
  first (a *precondition* dependency);
* :class:`Exclusive` -- at most one of two tasks runs per item;
* :class:`MustFollow` -- whenever the trigger runs, the response must
  eventually run on the same item (an obligation).

Constraints are *checked* against a simulation's event sequence
(:func:`check_trace`) or -- stronger -- against **every** execution via
the verification module (:func:`holds_in_all_executions`), which is the
design-time guarantee the paper's follow-on work automates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.database import Database
from .scheduler import SimulationResult

__all__ = [
    "Before",
    "Requires",
    "Exclusive",
    "MustFollow",
    "Constraint",
    "Violation",
    "check_trace",
    "check_history",
]


@dataclass(frozen=True)
class Before:
    """If both ``first`` and ``then`` run on an item, ``first`` starts
    before ``then`` starts."""

    first: str
    then: str


@dataclass(frozen=True)
class Requires:
    """``task`` may start on an item only after ``prerequisite`` has
    completed on the same item."""

    task: str
    prerequisite: str


@dataclass(frozen=True)
class Exclusive:
    """At most one of the two tasks runs on any single item."""

    left: str
    right: str


@dataclass(frozen=True)
class MustFollow:
    """If ``trigger`` completes on an item, ``response`` must complete on
    the same item (by the end of the execution)."""

    trigger: str
    response: str


Constraint = Union[Before, Requires, Exclusive, MustFollow]


@dataclass(frozen=True)
class Violation:
    """One constraint violation, with the offending item."""

    constraint: Constraint
    item: str
    detail: str

    def __str__(self) -> str:
        return "%s on %s: %s" % (type(self.constraint).__name__, self.item, self.detail)


def _task_events(result: SimulationResult) -> List[Tuple[str, str, str]]:
    """(kind, task, item) triples from the event stream, in order;
    kind is 'started' or 'done'."""
    out = []
    for event in result.events:
        if event.startswith("ins.started(") or event.startswith("ins.done("):
            inner = event[len("ins."):]
            kind = "started" if inner.startswith("started") else "done"
            args = inner[inner.index("(") + 1 : -1].split(", ")
            task, item = args[0], args[1]
            out.append((kind, task, item))
    return out


def check_trace(
    result: SimulationResult, constraints: Sequence[Constraint]
) -> List[Violation]:
    """Check *constraints* against one execution's event order."""
    events = _task_events(result)
    start_pos: Dict[Tuple[str, str], int] = {}
    done_pos: Dict[Tuple[str, str], int] = {}
    items = set()
    for i, (kind, task, item) in enumerate(events):
        items.add(item)
        key = (task, item)
        if kind == "started":
            start_pos.setdefault(key, i)
        else:
            done_pos.setdefault(key, i)

    violations: List[Violation] = []
    for constraint in constraints:
        for item in sorted(items):
            violation = _check_one(constraint, item, start_pos, done_pos)
            if violation is not None:
                violations.append(violation)
    return violations


def _check_one(
    constraint: Constraint,
    item: str,
    start_pos: Dict[Tuple[str, str], int],
    done_pos: Dict[Tuple[str, str], int],
) -> Optional[Violation]:
    if isinstance(constraint, Before):
        a = start_pos.get((constraint.first, item))
        b = start_pos.get((constraint.then, item))
        if a is not None and b is not None and not a < b:
            return Violation(
                constraint, item,
                "%s started at %d, %s at %d" % (constraint.then, b,
                                                constraint.first, a),
            )
        return None
    if isinstance(constraint, Requires):
        b = start_pos.get((constraint.task, item))
        a = done_pos.get((constraint.prerequisite, item))
        if b is not None and (a is None or not a < b):
            return Violation(
                constraint, item,
                "%s ran without completed prerequisite %s"
                % (constraint.task, constraint.prerequisite),
            )
        return None
    if isinstance(constraint, Exclusive):
        l = start_pos.get((constraint.left, item))
        r = start_pos.get((constraint.right, item))
        if l is not None and r is not None:
            return Violation(
                constraint, item,
                "both %s and %s ran" % (constraint.left, constraint.right),
            )
        return None
    if isinstance(constraint, MustFollow):
        t = done_pos.get((constraint.trigger, item))
        r = done_pos.get((constraint.response, item))
        if t is not None and r is None:
            return Violation(
                constraint, item,
                "%s completed but %s never did"
                % (constraint.trigger, constraint.response),
            )
        return None
    raise TypeError("unknown constraint %r" % (constraint,))


def check_history(
    history: Database, constraints: Sequence[Constraint]
) -> List[Violation]:
    """Check occurrence constraints (Exclusive / MustFollow) against a
    final history database.  Ordering constraints (Before / Requires)
    need the event sequence: use :func:`check_trace` for those."""
    done: Dict[str, set] = {}
    for fact in history.facts("done"):
        task, item = str(fact.args[0]), str(fact.args[1])
        done.setdefault(item, set()).add(task)

    violations: List[Violation] = []
    for constraint in constraints:
        if isinstance(constraint, Exclusive):
            for item, tasks in sorted(done.items()):
                if constraint.left in tasks and constraint.right in tasks:
                    violations.append(
                        Violation(constraint, item, "both tasks in history")
                    )
        elif isinstance(constraint, MustFollow):
            for item, tasks in sorted(done.items()):
                if constraint.trigger in tasks and constraint.response not in tasks:
                    violations.append(
                        Violation(constraint, item, "response missing from history")
                    )
        elif isinstance(constraint, (Before, Requires)):
            raise ValueError(
                "ordering constraint %r needs the event trace; use check_trace"
                % (constraint,)
            )
    return violations
