"""Experiment C1/C3: full TD is RE-complete with a fixed schema.

Paper artifact: the RE-completeness theorem and Corollary 4.6 (three
concurrent sequential processes suffice).  We regenerate their
operational content:

* a two-counter machine runs inside TD as three concurrent processes;
  execution length grows with the machine's runtime while the database
  stays constant-size (storage lives in recursion depth);
* a diverging machine drives the semi-decision procedure into its budget
  -- termination cannot be promised, only fairness;
* the two-stack construction (the literal Corollary 4.6 encoding) agrees
  with the native machines.
"""

import pytest

from repro import Interpreter, SearchBudgetExceeded
from repro.complexity import diverging_counter_machine, measure, print_series
from repro.machines import counter_to_td, tm_to_two_stack, two_stack_to_td
from repro.machines.counter import parity_program, transfer_program
from repro.machines.turing import BLANK, TuringMachine


def test_counter_machine_simulation_scales(benchmark):
    """Trace length grows linearly with machine runtime; database stays
    constant -- the fixed-schema RE argument, measured."""
    machine = transfer_program()
    rows = []
    for n in (1, 2, 4, 6, 8):
        program, goal, db = counter_to_td(machine, c0=n)
        interp = Interpreter(program, max_configs=5_000_000)
        exe, seconds = measure(lambda: interp.simulate(goal, db))
        assert exe is not None
        _accepted, _c0, _c1, native_steps = machine.run(c0=n)
        rows.append([n, native_steps, len(exe.trace), len(exe.database), seconds])
    print_series(
        "C1: counter machine in TD (3 concurrent processes)",
        ["c0", "machine steps", "TD trace len", "final |db|", "seconds"],
        rows,
    )
    # trace grows with input, database does not
    traces = [r[2] for r in rows]
    assert traces == sorted(traces) and traces[-1] > traces[0]
    dbs = [r[3] for r in rows]
    assert max(dbs) <= min(dbs) + 1

    program, goal, db = counter_to_td(machine, c0=4)
    interp = Interpreter(program, max_configs=5_000_000)
    benchmark.pedantic(
        lambda: interp.simulate(goal, db), rounds=3, iterations=1
    )


def test_acceptance_matches_native_machine(benchmark):
    machine = parity_program()
    rows = []
    for n in range(5):
        program, goal, db = counter_to_td(machine, c0=n)
        interp = Interpreter(program, max_configs=5_000_000)
        accepted, seconds = measure(lambda: interp.succeeds(goal, db))
        assert accepted == machine.accepts(c0=n)
        rows.append([n, accepted, seconds])
    print_series(
        "C1: TD acceptance == machine acceptance (parity)",
        ["c0", "accepts", "seconds"],
        rows,
    )
    program, goal, db = counter_to_td(machine, c0=2)
    interp = Interpreter(program, max_configs=5_000_000)
    benchmark.pedantic(lambda: interp.succeeds(goal, db), rounds=3, iterations=1)


def test_divergence_exhausts_budget(benchmark):
    """The RE boundary made operational: no verdict, only budget."""
    program, goal, db = counter_to_td(diverging_counter_machine())
    rows = []
    for budget in (1_000, 4_000, 16_000):
        interp = Interpreter(program, max_configs=budget)
        def attempt():
            try:
                interp.succeeds(goal, db)
                return "accepted"
            except SearchBudgetExceeded:
                return "budget"
        outcome, seconds = measure(attempt)
        assert outcome == "budget"
        rows.append([budget, outcome, seconds])
    print_series(
        "C1: diverging machine -- semi-decision budgets",
        ["budget (configs)", "outcome", "seconds"],
        rows,
    )
    interp = Interpreter(program, max_configs=1_000)
    def run():
        try:
            interp.succeeds(goal, db)
        except SearchBudgetExceeded:
            pass
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_two_stack_corollary46(benchmark):
    """The literal Corollary 4.6 construction: three concurrent
    sequential processes simulate a two-stack machine."""
    tm = TuringMachine(
        states=frozenset({"even", "odd", "acc"}),
        input_alphabet=frozenset({"a"}),
        tape_alphabet=frozenset({"a", BLANK}),
        transitions={
            ("even", "a"): [("odd", "a", "R")],
            ("odd", "a"): [("even", "a", "R")],
            ("even", BLANK): [("acc", BLANK, "R")],
        },
        start="even",
        accepting=frozenset({"acc"}),
    )
    tsm = tm_to_two_stack(tm)
    rows = []
    for n in (0, 1, 2):
        word = ["a"] * n
        program, goal, db = two_stack_to_td(tsm, word)
        interp = Interpreter(program, max_configs=8_000_000)
        got, seconds = measure(lambda: interp.succeeds(goal, db))
        assert got == tm.accepts(word) == tsm.accepts(word)
        rows.append([n, got, seconds])
    print_series(
        "C3: two-stack machine in TD (Corollary 4.6)",
        ["|input|", "accepts", "seconds"],
        rows,
    )
    program, goal, db = two_stack_to_td(tsm, ["a", "a"])
    interp = Interpreter(program, max_configs=8_000_000)
    benchmark.pedantic(lambda: interp.succeeds(goal, db), rounds=1, iterations=1)
