"""Experiment C7: fully bounded TD -- the practical fragment.

Paper artifact: Section 5.  Fully bounded TD (bounded concurrency +
sequential tail recursion) keeps the modeling features workflows need
while restoring decidability with a practical procedure.  Measured
faces:

* coverage: the classifier places the paper's workflow machinery inside
  the fragment (only the unbounded instance spawner escapes);
* decidability: unsatisfiable fully bounded goals are *refuted* in
  bounded time, where full TD could only time out;
* cost: the exhaustive decision procedure scales with the (finite)
  configuration space.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    Sublanguage,
    classify,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)
from repro.complexity import estimate_growth, measure, print_series
from repro.lims import gel_pipeline
from repro.workflow import Task, SeqFlow, Step, WorkflowSpec
from repro.workflow.compiler import compile_workflows
from repro.workflow.scheduler import driver_rules


def test_classifier_coverage(benchmark):
    """Which paper constructs land inside fully bounded TD?"""
    pipeline = compile_workflows([gel_pipeline(iterate=True)])
    spawner = pipeline.extend(driver_rules("mapping"))
    rows = [
        ["gel pipeline (iterated)", classify(pipeline).name],
        ["pipeline + instance spawner", classify(spawner).name],
    ]
    drain = parse_program(
        "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_)."
    )
    rows.append(["tail-recursive drain", classify(drain).name])
    nontail = parse_program("p <- ins.d * p * ins.u.\np <- stop.")
    rows.append(["non-tail recursion", classify(nontail).name])
    print_series("C7: classifier coverage", ["program", "sublanguage"], rows)
    assert rows[0][1] in ("FULLY_BOUNDED", "NONRECURSIVE")
    assert rows[1][1] == "FULL"
    assert rows[2][1] == "FULLY_BOUNDED"
    assert rows[3][1] == "SEQUENTIAL"

    benchmark.pedantic(lambda: classify(spawner), rounds=5, iterations=1)


def test_refutation_is_bounded(benchmark):
    """A deadlocked fully bounded workflow is refuted, terminating."""
    program = parse_program(
        """
        drain <- item(X) * del.item(X) * need_token * drain.
        drain <- not item(_).
        need_token <- token(X) * del.token(X).
        """
    )
    rows = []
    for n in (2, 4, 8):
        db = parse_database(" ".join("item(i%d)." % i for i in range(n)))
        engine = select_engine(program)
        assert engine.decidable
        ok, seconds = measure(lambda: engine.succeeds("drain", db))
        assert not ok  # no tokens: refuted, not timed out
        rows.append([n, seconds])
    print_series(
        "C7: bounded refutation of a deadlocked workflow",
        ["items", "seconds"],
        rows,
    )
    db = parse_database("item(a). item(b).")
    engine = select_engine(program)
    benchmark.pedantic(lambda: engine.succeeds("drain", db), rounds=3, iterations=1)


def test_decision_cost_tracks_state_space(benchmark):
    """Exhaustive deciding explores every reachable configuration.  On
    the drain family the reachable databases are all subsets of the item
    set (any deletion order), so the space -- and the exhaustive cost --
    is exponential in the item count, even though a single *witness*
    execution is linear.  That gap is the practical content of "fully
    bounded": decidable, not free."""
    program = parse_program(
        "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_)."
    )
    rows = []
    sizes = []
    times = []
    for n in (4, 6, 8, 10):
        db = parse_database(" ".join("item(i%02d)." % i for i in range(n)))
        interp = Interpreter(program, max_configs=10_000_000)
        finals, seconds = measure(
            lambda: interp.final_databases(parse_goal("drain"), db)
        )
        assert finals == {Database()}
        # one DFS witness, for contrast
        _exe, witness_s = measure(
            lambda: interp.simulate(parse_goal("drain"), db)
        )
        rows.append([n, 2**n, seconds, witness_s])
        sizes.append(n)
        times.append(max(seconds, 1e-6))
    print_series(
        "C7: exhaustive decide (2^n subsets) vs one witness execution",
        ["items", "2^items", "decide s", "witness s"],
        rows,
    )
    assert estimate_growth(sizes, times) == "exponential"
    # the witness stays far cheaper than the exhaustive decision
    assert rows[-1][3] < rows[-1][2]

    db = parse_database(" ".join("item(i%02d)." % i for i in range(8)))
    interp = Interpreter(program, max_configs=10_000_000)
    benchmark.pedantic(
        lambda: interp.final_databases(parse_goal("drain"), db),
        rounds=3,
        iterations=1,
    )
