"""Recovery combinators compiled to ordinary TD rules.

The paper gets rollback for free -- a failed (sub)execution leaves no
trace -- so recovery is not an engine feature but a *programming
pattern over iso*: wrap the fragile part in an isolated attempt, and
express the retry/alternative policy as TD control flow.  Each
combinator here returns a :class:`Recovered`: a goal formula plus the
fresh rules (and token facts) that implement the policy.  Install them
with :meth:`Recovered.install` and run the goal like any other.

``retry(a, n)``
    Bounded recursion over ``iso(a)``::

        retryK(V...) <- iso(a).
        retryK(V...) <- retryK_tok(N) * N > 0 * del.retryK_tok(N) *
                        N2 is N - 1 * ins.retryK_tok(N2) * retryK(V...).

    plus one counter fact ``retryK_tok(n-1)``.  Each recursive descent
    decrements the counter, so there are at most *n* attempts; ticking
    the counter down changes the database state, which keeps the
    attempts distinct for the search's memoization (a *single*
    descending counter, so the retry adds a linear chain of states --
    not a subset lattice) *and* advances the fault injector's tick --
    transient faults expire mid-retry, which is exactly the recovery
    the chaos suite asserts.

``fallback(a, b)``
    Two rules for one fresh predicate: ``iso(a)`` or ``iso(b)``.  Under
    the paper's angelic nondeterminism either branch may commit; the
    DFS scheduler tries them in program order (*a* first), so *b* acts
    as the backup whenever *a*'s attempt fails and rolls back.

``with_budget(a, k)``
    ``iso[k](a)``: the isolated attempt runs under a private budget cap
    of *k* configurations.  Blowing the cap *fails the attempt* (which
    rolls back) instead of aborting the whole search -- the bounded
    building block the other combinators compose with.

``compensate(a, undo)``
    ``iso(a)`` with a registered compensation: once ``iso(a)`` has
    committed it is beyond rollback (relative commit is final, Section
    4 of the paper), so undoing it is the *application's* job.  The
    combinator compiles both the action and ``undoK <- iso(undo)`` and
    records ``undo_goal``; a harness that aborts a larger plan after
    the action committed runs the compensation as its own transaction
    (the classic saga discipline, here expressed in TD itself).

Combinators nest: any of them accepts a goal string, a formula, or
another :class:`Recovered` (whose rules and facts are carried along).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core.database import Database
from ..core.formulas import (
    BinOp,
    Builtin,
    Call,
    Del,
    Formula,
    Ins,
    Isol,
    Seq,
    formula_variables,
)
from ..core.parser import as_goal
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable

__all__ = ["Recovered", "retry", "fallback", "with_budget", "compensate"]

#: Fresh-name source.  Process-local and monotonically increasing, so a
#: single run (one CLI invocation, one test) names combinators
#: deterministically: same construction order, same names.
_counter = itertools.count(1)

#: Predicates that are combinator bookkeeping (attempt tokens), not
#: application state -- strip them before checking workload invariants
#: or logging workflow events.
_RECOVERY_PRED = re.compile(r"(retry|fallback|comp)_\d+_tok$")

BodyLike = Union[str, Formula, "Recovered"]


@dataclass(frozen=True)
class Recovered:
    """A compiled recovery policy: run ``goal`` after installing
    ``rules`` (and inserting ``facts``) into the program/database."""

    goal: Formula
    rules: Tuple[Rule, ...] = ()
    facts: Tuple[Atom, ...] = ()
    undo_goal: Optional[Formula] = None

    def install(
        self, program: Program, db: Database
    ) -> Tuple[Program, Database]:
        """The program extended with the combinator rules and the
        database with the token facts inserted."""
        new_program = program.extend(self.rules) if self.rules else program
        new_db = db.insert_all(self.facts) if self.facts else db
        return new_program, new_db


def _coerce(body: BodyLike) -> Tuple[Formula, Tuple[Rule, ...], Tuple[Atom, ...]]:
    if isinstance(body, Recovered):
        return body.goal, body.rules, body.facts
    return as_goal(body), (), ()


def _ordered_vars(f: Formula) -> List[Variable]:
    seen: Dict[Variable, None] = {}
    for v in formula_variables(f):
        seen.setdefault(v, None)
    return list(seen)


def _fresh_head(base: str, variables) -> Atom:
    return Atom("%s_%d" % (base, next(_counter)), tuple(variables))


def retry(body: BodyLike, attempts: int, *, budget: Optional[int] = None) -> Recovered:
    """At most *attempts* isolated tries of *body* (bounded recursion).

    The free variables of *body* appear in the generated rule heads, so
    answer bindings flow out of whichever attempt commits.  *budget*
    additionally caps each attempt (``iso[budget]``), combining retry
    with ``with_budget``.
    """
    if attempts < 1:
        raise ValueError("retry needs at least one attempt, got %d" % attempts)
    goal, carried_rules, carried_facts = _coerce(body)
    variables = _ordered_vars(goal)
    head = _fresh_head("retry", variables)
    token_pred = head.pred + "_tok"
    # \x01-prefixed names cannot clash with source-program variables.
    n = Variable("\x01RetryN")
    n2 = Variable("\x01RetryN2")
    rules = (
        Rule(head, Isol(goal, budget)),
        # A single descending counter: each recursive descent rewrites
        # tok(N) to tok(N-1), so attempt states form a linear chain (an
        # any-of-N token pool would let the search explore every subset
        # of leftover tokens -- exponentially many states).
        Rule(
            head,
            Seq((
                Call(Atom(token_pred, (n,))),
                Builtin(">", n, Constant(0)),
                Del(Atom(token_pred, (n,))),
                Builtin("is", n2, BinOp("-", n, Constant(1))),
                Ins(Atom(token_pred, (n2,))),
                Call(head),
            )),
        ),
    )
    facts = (
        (Atom(token_pred, (Constant(attempts - 1),)),)
        if attempts > 1
        else ()
    )
    return Recovered(
        goal=Call(head),
        rules=carried_rules + rules,
        facts=carried_facts + facts,
    )


def fallback(primary: BodyLike, alternate: BodyLike) -> Recovered:
    """Isolated attempt of *primary*, with *alternate* as the backup."""
    pgoal, prules, pfacts = _coerce(primary)
    agoal, arules, afacts = _coerce(alternate)
    variables = _ordered_vars(pgoal)
    for v in _ordered_vars(agoal):
        if v not in variables:
            variables.append(v)
    head = _fresh_head("fallback", variables)
    rules = (
        Rule(head, Isol(pgoal)),
        Rule(head, Isol(agoal)),
    )
    return Recovered(
        goal=Call(head),
        rules=prules + arules + rules,
        facts=pfacts + afacts,
    )


def with_budget(body: BodyLike, cap: int) -> Recovered:
    """Isolated attempt of *body* under a private budget cap of *cap*
    configurations; exceeding the cap fails (and rolls back) the
    attempt instead of aborting the search."""
    if cap < 1:
        raise ValueError("attempt budget must be positive, got %d" % cap)
    goal, rules, facts = _coerce(body)
    return Recovered(goal=Isol(goal, cap), rules=rules, facts=facts)


def compensate(body: BodyLike, undo: BodyLike) -> Recovered:
    """Isolated attempt of *body* with a compiled compensation.

    Returns a :class:`Recovered` whose ``undo_goal`` runs ``iso(undo)``
    through its own fresh predicate; the caller (e.g. the chaos
    harness, or application code) invokes it when a larger plan fails
    *after* the action committed.
    """
    agoal, arules, afacts = _coerce(body)
    ugoal, urules, ufacts = _coerce(undo)
    avars = _ordered_vars(agoal)
    uvars = _ordered_vars(ugoal)
    head = _fresh_head("comp", avars)
    undo_head = _fresh_head("comp_undo", uvars)
    rules = (
        Rule(head, Isol(agoal)),
        Rule(undo_head, Isol(ugoal)),
    )
    return Recovered(
        goal=Call(head),
        rules=arules + urules + rules,
        facts=afacts + ufacts,
        undo_goal=Call(undo_head),
    )
