"""Pretty-printing of TD programs, formulas, and databases.

The ``__str__`` methods on the AST already produce re-parseable text;
this module adds whole-program layout and trace formatting for logs,
examples, and the CLI.  ``parse(format(x)) == x`` is property-tested.
"""

from __future__ import annotations

from typing import Iterable

from .database import Database
from .formulas import Formula
from .program import Program, Rule
from .transitions import Action

__all__ = ["format_rule", "format_program", "format_goal", "format_database", "format_trace"]


def format_rule(rule: Rule) -> str:
    """One rule, one line, trailing dot."""
    return str(rule)


def format_program(program: Program, declare_base: bool = False) -> str:
    """The whole rulebase; optionally with explicit ``#base`` directives."""
    lines = []
    if declare_base:
        for name, arity in program.schema.signatures():
            lines.append("#base %s/%d." % (name, arity))
    grouped_from = None
    for rule in program.rules:
        if grouped_from is not None and rule.head.signature != grouped_from:
            lines.append("")
        grouped_from = rule.head.signature
        lines.append(format_rule(rule))
    return "\n".join(lines)


def format_goal(goal: Formula) -> str:
    """A goal as query text: ``?- body.``"""
    return "?- %s." % (goal,)


def format_database(db: Database) -> str:
    """Facts, one per line, sorted, re-parseable with ``parse_database``."""
    return "\n".join("%s." % fact for fact in db)


def format_trace(trace: Iterable[Action], indent: str = "") -> str:
    """An execution trace, one action per line; isolated sub-executions
    are indented under their ``iso`` step."""
    lines = []
    for action in trace:
        if action.kind == "iso":
            lines.append(indent + "iso:")
            lines.append(format_trace(action.subtrace, indent + "    "))
        else:
            lines.append(indent + str(action))
    return "\n".join(lines)
