"""Unit tests for rulebases: resolution, validation, renaming."""

import pytest

from repro.core.formulas import Call, Ins, Seq, Test, Truth
from repro.core.parser import parse_program, parse_rules
from repro.core.program import Program, ProgramError, Rule
from repro.core.terms import Atom, Variable, atom


class TestResolution:
    def test_base_atoms_become_tests(self):
        prog = parse_program("p(X) <- q(X) * r(X).")
        (rule,) = prog.rules
        assert all(isinstance(part, Test) for part in rule.body.parts)

    def test_derived_atoms_stay_calls(self):
        prog = parse_program("p(X) <- helper(X).\nhelper(X) <- q(X).")
        rule = prog.rules_for(("p", 1))[0]
        assert isinstance(rule.body, Call)

    def test_update_targets_declared_base(self):
        prog = parse_program("p <- ins.log(a).")
        assert "log" in prog.schema
        assert ("log", 1) in prog.schema.signatures()

    def test_goal_resolution(self):
        prog = parse_program("p(X) <- q(X).")
        from repro.core.parser import parse_goal

        goal = prog.resolve_goal(parse_goal("p(a) * q(b)"))
        assert isinstance(goal.parts[0], Call)
        assert isinstance(goal.parts[1], Test)

    def test_same_name_different_arity_are_distinct(self):
        prog = parse_program("p(X) <- p(X, a).")
        assert prog.is_derived(("p", 1))
        assert prog.is_base(("p", 2))


class TestValidation:
    def test_cannot_update_derived(self):
        with pytest.raises(ProgramError):
            parse_program("p <- q.\nq <- true.\nr <- ins.p.")

    def test_strict_mode_rejects_unknown(self):
        with pytest.raises(ProgramError):
            parse_program("p <- mystery(X).", strict=True)

    def test_strict_mode_accepts_declared(self):
        prog = parse_program("#base mystery/1.\np <- mystery(X).", strict=True)
        assert prog.is_base(("mystery", 1))


class TestRuleRenaming:
    def test_rename_is_consistent(self):
        (rule,) = parse_rules("p(X, Y) <- q(X) * r(Y) * s(X).")
        renamed = rule.rename("_7")
        head_vars = list(renamed.head.variables())
        assert head_vars[0].name == "X_7"
        # the body uses the same renamed variables
        from repro.core.formulas import formula_variables

        body_vars = {v.name for v in formula_variables(renamed.body)}
        assert body_vars == {"X_7", "Y_7"}

    def test_fresh_rules_unique_per_unfold(self):
        prog = parse_program("p(X) <- q(X).")
        r1 = next(prog.fresh_rules_for(("p", 1)))
        r2 = next(prog.fresh_rules_for(("p", 1)))
        assert r1.variables() != r2.variables()


class TestProgramAPI:
    def test_len_iter_str(self):
        prog = parse_program("p <- q.\nr <- s.")
        assert len(prog) == 2
        assert len(list(prog)) == 2
        text = str(prog)
        assert "p <- q." in text

    def test_rules_for_program_order(self):
        prog = parse_program("p <- a.\np <- b.\np <- c.")
        bodies = [str(r.body) for r in prog.rules_for(("p", 0))]
        assert bodies == ["a", "b", "c"]

    def test_extend_is_pure(self):
        prog = parse_program("p <- q.")
        bigger = prog.extend(parse_rules("r <- s."))
        assert len(prog) == 1
        assert len(bigger) == 2
        assert bigger.is_derived(("r", 0))

    def test_derived_signatures_sorted(self):
        prog = parse_program("zz <- a.\naa <- b.")
        assert prog.derived_signatures() == (("aa", 0), ("zz", 0))

    def test_facts_for_derived_predicates(self):
        prog = parse_program("axiom(a).\naxiom(b).\nok <- axiom(X).")
        assert prog.is_derived(("axiom", 1))
        assert len(prog.rules_for(("axiom", 1))) == 2
