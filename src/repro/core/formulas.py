"""Abstract syntax of Transaction Datalog goal bodies.

A TD *goal* (and every rule body) is built from:

* elementary database operations --
  :class:`Test` (tuple testing), :class:`Ins` (``ins.p(t)``),
  :class:`Del` (``del.p(t)``);
* calls to derived predicates defined by rules -- :class:`Call`;
* *sequential composition* ``a (x) b`` -- :class:`Seq`;
* *concurrent composition* ``a | b`` -- :class:`Conc`;
* the *isolation* modality ``(.)a`` -- :class:`Isol` (concrete syntax
  ``iso(a)``), which executes ``a`` atomically, with no interleaving from
  sibling processes;
* the trivially succeeding empty process -- :class:`Truth`.

Two pragmatic extensions used by the paper's examples are included and
clearly flagged by the classifier:

* :class:`Neg` -- an elementary *absence* test (``not p(t)``), used e.g.
  to detect that no work items remain.  The paper allows arbitrary
  elementary operations as black boxes; an absence test is one.
* :class:`Builtin` -- comparisons and arithmetic over integer constants
  (``Bal > Amt``, ``B2 is Bal - Amt``), needed by the banking examples.

Formula trees are immutable; ``Seq``/``Conc`` are n-ary and flattened on
construction so that structural equality matches associativity, which the
engines' memo tables rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from .terms import Atom, Constant, Term, Variable
from .unify import Substitution, apply_atom, walk

__all__ = [
    "Formula",
    "Truth",
    "TRUTH",
    "Test",
    "Neg",
    "Ins",
    "Del",
    "Call",
    "Seq",
    "Conc",
    "Isol",
    "Builtin",
    "ArithExpr",
    "BinOp",
    "seq",
    "conc",
    "iso",
    "apply_subst",
    "formula_variables",
    "free_variables",
    "rename_formula",
    "walk_formulas",
]


class Formula:
    """Base class for TD formulas (process expressions)."""

    __slots__ = ()


@dataclass(frozen=True)
class Truth(Formula):
    """The empty process: succeeds immediately, changes nothing."""

    def __str__(self) -> str:
        return "true"


TRUTH = Truth()


@dataclass(frozen=True)
class Test(Formula):
    """Elementary tuple test on a base predicate.

    Succeeds once per matching fact in the current state, binding the
    pattern's variables.  Leaves the database unchanged.
    """

    atom: Atom

    __test__ = False  # not a pytest test class despite the name

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Neg(Formula):
    """Elementary absence test: succeeds iff no fact matches the pattern.

    Binds nothing.  (Extension; see module docstring.)
    """

    atom: Atom

    def __str__(self) -> str:
        return "not %s" % (self.atom,)


@dataclass(frozen=True)
class Ins(Formula):
    """Elementary insertion ``ins.p(t)``.  The atom must be ground at
    execution time (safety)."""

    atom: Atom

    def __str__(self) -> str:
        return "ins.%s" % (self.atom,)


@dataclass(frozen=True)
class Del(Formula):
    """Elementary deletion ``del.p(t)``.  The atom must be ground at
    execution time (safety)."""

    atom: Atom

    def __str__(self) -> str:
        return "del.%s" % (self.atom,)


@dataclass(frozen=True)
class Call(Formula):
    """Invocation of a derived predicate defined by rules."""

    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)


def _flatten(cls, parts: Tuple[Formula, ...]) -> Tuple[Formula, ...]:
    for p in parts:
        if isinstance(p, (cls, Truth)):
            break
    else:  # already flat -- the common case on rebuilds
        return tuple(parts)
    out = []
    for p in parts:
        if isinstance(p, cls):
            out.extend(p.parts)
        elif isinstance(p, Truth):
            continue
        else:
            out.append(p)
    return tuple(out)


@dataclass(frozen=True)
class Seq(Formula):
    """Sequential composition ``p1 (x) p2 (x) ... (x) pn``."""

    parts: Tuple[Formula, ...]

    def __post_init__(self):
        object.__setattr__(self, "parts", _flatten(Seq, self.parts))

    def __str__(self) -> str:
        return " * ".join(_wrap(p) for p in self.parts) if self.parts else "true"


@dataclass(frozen=True)
class Conc(Formula):
    """Concurrent composition ``p1 | p2 | ... | pn`` (interleaving)."""

    parts: Tuple[Formula, ...]

    def __post_init__(self):
        object.__setattr__(self, "parts", _flatten(Conc, self.parts))

    def __str__(self) -> str:
        return " | ".join(_wrap(p) for p in self.parts) if self.parts else "true"


@dataclass(frozen=True)
class Isol(Formula):
    """Isolated (atomic) execution of the body: ``iso(body)``.

    ``budget`` is an optional cap on the nested search that executes the
    body: when set, an attempt that would explore more than ``budget``
    configurations *fails* (and therefore rolls back -- the paper's
    rollback-on-failure) instead of raising, which is the semantics of
    the ``with_budget`` recovery combinator (see
    :mod:`repro.faults.recovery`).  ``None`` (the default, and the only
    form concrete syntax produces) shares the enclosing search's budget
    and reports exhaustion as an error, exactly as before.
    """

    body: Formula
    budget: Optional[int] = None

    def __str__(self) -> str:
        if self.budget is None:
            return "iso(%s)" % (self.body,)
        return "iso[%d](%s)" % (self.budget, self.body)


# ---------------------------------------------------------------------------
# Built-in comparisons / arithmetic (for the banking examples)
# ---------------------------------------------------------------------------

#: Arithmetic expression: a term, or a binary operation over expressions.
ArithExpr = Union[Term, "BinOp"]


@dataclass(frozen=True)
class BinOp:
    """Arithmetic expression node: ``left op right`` with op in + - *."""

    op: str
    left: ArithExpr
    right: ArithExpr

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.left, self.op, self.right)


_COMPARISONS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Builtin(Formula):
    """A comparison ``left op right`` or binding ``var is expr``.

    * For op in ``= != < <= > >=`` both sides must be ground at execution
      time; the comparison is evaluated over constant values.
    * For op ``is`` the right side is an arithmetic expression that must
      be ground; the left side is unified with the result.
    """

    op: str
    left: ArithExpr
    right: ArithExpr

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op, self.right)

    def evaluate(self, subst: Substitution) -> Optional[Substitution]:
        """Evaluate under *subst*; return extended substitution or None.

        Raises :class:`ValueError` if required arguments are unbound --
        unbound comparisons are safety errors, not silent failures.
        """
        if self.op == "is":
            value = _eval_arith(self.right, subst)
            left = self.left
            if isinstance(left, BinOp):
                raise ValueError("left side of 'is' must be a term")
            left = walk(left, subst)
            if isinstance(left, Variable):
                out = dict(subst)
                out[left] = Constant(value)
                return out
            if isinstance(left, Constant) and left.value == value:
                return subst
            return None
        fn = _COMPARISONS.get(self.op)
        if fn is None:
            raise ValueError("unknown builtin operator %r" % (self.op,))
        lv = _eval_arith(self.left, subst)
        rv = _eval_arith(self.right, subst)
        return subst if fn(lv, rv) else None


def _eval_arith(expr: ArithExpr, subst: Substitution):
    if isinstance(expr, BinOp):
        lv = _eval_arith(expr.left, subst)
        rv = _eval_arith(expr.right, subst)
        if not isinstance(lv, int) or not isinstance(rv, int):
            raise ValueError("arithmetic over non-integers: %s" % (expr,))
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        raise ValueError("unknown arithmetic operator %r" % (expr.op,))
    term = walk(expr, subst)
    if isinstance(term, Variable):
        raise ValueError("unbound variable %s in builtin" % (term,))
    return term.value


# ---------------------------------------------------------------------------
# Constructors and generic traversals
# ---------------------------------------------------------------------------


def seq(*parts: Formula) -> Formula:
    """Sequential composition; collapses units and singletons."""
    flat = _flatten(Seq, tuple(parts))
    if not flat:
        return TRUTH
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)


def conc(*parts: Formula) -> Formula:
    """Concurrent composition; collapses units and singletons."""
    flat = _flatten(Conc, tuple(parts))
    if not flat:
        return TRUTH
    if len(flat) == 1:
        return flat[0]
    return Conc(flat)


def iso(body: Formula, budget: Optional[int] = None) -> Formula:
    """Isolation; ``iso(true)`` is just ``true``.

    ``budget`` caps the nested search executing the body (bounded
    attempt semantics -- see :class:`Isol`).
    """
    if isinstance(body, Truth):
        return TRUTH
    return Isol(body, budget)


def _wrap(f: Formula) -> str:
    if isinstance(f, (Seq, Conc)):
        return "(%s)" % (f,)
    return str(f)


def _apply_expr(expr: ArithExpr, subst: Substitution) -> ArithExpr:
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _apply_expr(expr.left, subst), _apply_expr(expr.right, subst))
    return walk(expr, subst)


_EMPTY_FROZENSET: frozenset = frozenset()


def free_variables(f: Formula) -> frozenset:
    """The set of variables occurring in *f*, cached on the node.

    Formula nodes are immutable, so the set is computed once per node and
    shared by every tree that reuses the node.  The hot-path consumers
    are :func:`apply_subst` (skip subtrees the substitution cannot touch)
    and the transition relation's blocked-branch summaries.
    """
    cached = getattr(f, "_free_vars", None)
    if cached is not None:
        return cached
    if isinstance(f, (Test, Neg, Ins, Del, Call)):
        fv = frozenset(f.atom.variables()) if not f.atom.is_ground() else _EMPTY_FROZENSET
    elif isinstance(f, (Seq, Conc)):
        fv = _EMPTY_FROZENSET
        for p in f.parts:
            fv = fv | free_variables(p)
    elif isinstance(f, Isol):
        fv = free_variables(f.body)
    elif isinstance(f, Builtin):
        fv = frozenset(_expr_variables(f.left)) | frozenset(_expr_variables(f.right))
    elif isinstance(f, Truth):
        return _EMPTY_FROZENSET
    else:
        raise TypeError("unknown formula type: %r" % (f,))
    object.__setattr__(f, "_free_vars", fv)
    return fv


def apply_subst(f: Formula, subst: Substitution) -> Formula:
    """Apply a substitution to an entire formula tree.

    Subtrees whose variables are disjoint from the substitution's domain
    are returned unchanged (not copied), so a step's residual shares all
    untouched structure -- and therefore all cached canonical-key and
    free-variable summaries -- with its parent configuration.
    """
    if not subst:
        return f
    if isinstance(f, Truth):
        return f
    if free_variables(f).isdisjoint(subst):
        return f
    if isinstance(f, Test):
        return Test(apply_atom(f.atom, subst))
    if isinstance(f, Neg):
        return Neg(apply_atom(f.atom, subst))
    if isinstance(f, Ins):
        return Ins(apply_atom(f.atom, subst))
    if isinstance(f, Del):
        return Del(apply_atom(f.atom, subst))
    if isinstance(f, Call):
        return Call(apply_atom(f.atom, subst))
    if isinstance(f, Seq):
        return Seq(tuple(apply_subst(p, subst) for p in f.parts))
    if isinstance(f, Conc):
        return Conc(tuple(apply_subst(p, subst) for p in f.parts))
    if isinstance(f, Isol):
        return Isol(apply_subst(f.body, subst), f.budget)
    if isinstance(f, Builtin):
        return Builtin(f.op, _apply_expr(f.left, subst), _apply_expr(f.right, subst))
    raise TypeError("unknown formula type: %r" % (f,))


def _expr_variables(expr: ArithExpr) -> Iterator[Variable]:
    if isinstance(expr, BinOp):
        yield from _expr_variables(expr.left)
        yield from _expr_variables(expr.right)
    elif isinstance(expr, Variable):
        yield expr


def formula_variables(f: Formula) -> Iterator[Variable]:
    """Yield all variables in *f* (with repeats, in syntactic order)."""
    if isinstance(f, (Test, Neg, Ins, Del, Call)):
        yield from f.atom.variables()
    elif isinstance(f, (Seq, Conc)):
        for p in f.parts:
            yield from formula_variables(p)
    elif isinstance(f, Isol):
        yield from formula_variables(f.body)
    elif isinstance(f, Builtin):
        yield from _expr_variables(f.left)
        yield from _expr_variables(f.right)


def rename_formula(f: Formula, renaming: Dict[Variable, Term]) -> Formula:
    """Apply a variable renaming (a substitution) to *f*."""
    return apply_subst(f, renaming)


def walk_formulas(f: Formula) -> Iterator[Formula]:
    """Yield *f* and every subformula (pre-order)."""
    yield f
    if isinstance(f, (Seq, Conc)):
        for p in f.parts:
            yield from walk_formulas(p)
    elif isinstance(f, Isol):
        yield from walk_formulas(f.body)
