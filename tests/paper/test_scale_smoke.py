"""Scale smoke tests: the engines at sizes an adopter would actually use.

Unit tests pin behaviour at toy sizes; these pin that nothing falls off
a cliff at realistic ones (each case is budgeted to run in seconds).
"""

import pytest

from repro import Interpreter, parse_goal, parse_program, select_engine
from repro.complexity import chain_edges, nonrecursive_path_program
from repro.datalog import evaluate, from_td
from repro.lims import build_lab_simulator, lab_agents, sample_batch, synthetic_history
from repro.workflow import task_counts


class TestWorkflowScale:
    def test_hundred_sample_batch(self):
        sim = build_lab_simulator(
            agents=lab_agents(n_clerks=2, n_techs=4, n_rigs=2, n_readers=2)
        )
        result = sim.run(sample_batch(100))
        assert len(result.completed("analyze")) == 100
        # trace stays linear-ish: ~40 actions per sample
        assert len(result.execution.trace) < 100 * 80

    def test_large_history_queries(self):
        history = synthetic_history(2000, seed=1)
        counts = task_counts(history)
        assert counts["analyze"] == 2000
        assert len(history) > 20_000


class TestEngineScale:
    def test_nonrecursive_large_graph(self):
        program = nonrecursive_path_program()
        engine = select_engine(program)
        db = chain_edges(1000, extra_random=500, seed=9)
        assert engine.succeeds("witness", db)

    def test_datalog_closure_large_chain(self):
        datalog = from_td(
            parse_program(
                "path(X, Y) <- e(X, Y).\npath(X, Y) <- e(X, Z) * path(Z, Y)."
            )
        )
        facts = evaluate(datalog, chain_edges(120))
        assert len(facts.facts("path")) == 120 * 121 // 2

    def test_interpreter_long_sequential_run(self):
        program = parse_program(
            "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_)."
        )
        from repro import parse_database

        db = parse_database(" ".join("item(i%03d)." % i for i in range(300)))
        exe = Interpreter(program, max_configs=5_000_000).simulate(
            parse_goal("drain"), db
        )
        assert exe is not None and exe.database == parse_database("")
