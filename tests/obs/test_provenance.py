"""Provenance recorder: round-trip, taxonomy, and the zero-cost-off guard."""

import json

import pytest

from repro import Interpreter, parse_database, parse_goal, parse_program, select_engine
from repro.obs import (
    Instrumentation,
    ProvenanceRecorder,
    active_recorder,
    instrumented,
    recording,
)
from repro.obs.provenance import (
    DISPOSITIONS,
    action_delta,
    config_digest,
    db_delta,
    render_bindings,
)

BANK_TEXT = """
    transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
    withdraw(Acct, Amt) <-
        balance(Acct, Bal) * Bal >= Amt *
        del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
    deposit(Acct, Amt) <-
        balance(Acct, Bal) *
        del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""


def bank_run(provenance):
    """One BFS bank transfer with the given recorder attached.

    Untabled: these tests pin the recorder's *small-step* node shape
    (per-step bindings, rule unifiers); the tabled big-step path has its
    own provenance coverage in tests/core/test_tabling.py."""
    program = parse_program(BANK_TEXT)
    db = parse_database("balance(a, 100). balance(b, 10).")
    interp = Interpreter(program, provenance=provenance, tabling=False)
    return list(interp.solve(parse_goal("transfer(a, b, 30)"), db))


class TestRecorder:
    def test_records_a_derivation_tree(self):
        rec = ProvenanceRecorder()
        solutions = bank_run(rec)
        assert len(solutions) == 1
        assert rec.nodes
        roots = [n for n in rec.nodes if n.parent is None]
        assert len(roots) == 1 and roots[0].disposition == "root"
        assert rec.solutions(), "the committed branch must be marked"
        # Every solution's ancestry chains back to the root.
        for sol in rec.solutions():
            path = rec.path_to(sol.node_id)
            assert path[0].node_id == roots[0].node_id
            assert path[-1] is sol

    def test_dispositions_stay_in_taxonomy(self):
        rec = ProvenanceRecorder()
        bank_run(rec)
        for node in rec.nodes:
            assert node.disposition in DISPOSITIONS

    def test_step_nodes_carry_bindings_and_deltas(self):
        rec = ProvenanceRecorder()
        bank_run(rec)
        sol = rec.solutions()[0]
        path = rec.path_to(sol.node_id)
        # The committing iso step nets the transfer's four updates.
        deltas = [n for n in path if n.inserted or n.deleted]
        assert deltas, "proof path must show database deltas"
        all_ins = [f for n in path for f in n.inserted]
        assert any(f.startswith("balance(a, 70)") for f in all_ins)
        assert any(n.bindings for n in path)

    def test_cap_drops_and_counts(self):
        rec = ProvenanceRecorder(max_nodes=2)
        assert rec.record("config", "a") == 0
        assert rec.record("config", "b", parent=0) == 1
        assert rec.record("config", "c", parent=0) is None
        assert rec.dropped == 1
        rec.mark(None, "solution")  # tolerated, no-op

    def test_mark_never_downgrades_solution(self):
        rec = ProvenanceRecorder()
        nid = rec.record("config", "goal")
        rec.mark(nid, "solution", witness={"answers": ["x"]})
        rec.mark(nid, "failed-unify")
        assert rec.nodes[nid].disposition == "solution"
        assert rec.nodes[nid].witness == {"answers": ["x"]}

    def test_parent_stack(self):
        rec = ProvenanceRecorder()
        assert rec.current_parent is None
        outer = rec.record("call", "p(X)")
        rec.push(outer)
        assert rec.current_parent == outer
        inner = rec.record("call", "q(X)", parent=rec.current_parent)
        assert rec.nodes[inner].parent == outer
        assert rec.nodes[inner].depth == 1
        rec.pop()
        assert rec.current_parent is None


class TestRoundTrip:
    def test_jsonl_round_trip_is_lossless(self):
        rec = ProvenanceRecorder()
        bank_run(rec)
        reloaded = ProvenanceRecorder.from_jsonl(rec.to_jsonl())
        assert len(reloaded.nodes) == len(rec.nodes)
        for a, b in zip(rec.nodes, reloaded.nodes):
            assert (a.node_id, a.parent, a.kind, a.label) == (
                b.node_id,
                b.parent,
                b.kind,
                b.label,
            )
            assert a.disposition == b.disposition
            assert a.bindings == b.bindings
            assert a.inserted == b.inserted
            assert a.deleted == b.deleted
            assert a.witness == b.witness
            assert a.depth == b.depth
        assert reloaded.by_disposition() == rec.by_disposition()

    def test_round_trip_re_renders_identical_proof(self):
        from repro.obs.explain import render_proof_tree

        rec = ProvenanceRecorder()
        bank_run(rec)
        reloaded = ProvenanceRecorder.from_jsonl(rec.to_jsonl())
        assert render_proof_tree(reloaded) == render_proof_tree(rec)

    def test_spans_are_tracer_compatible(self, tmp_path):
        from repro.obs import read_jsonl

        rec = ProvenanceRecorder()
        bank_run(rec)
        path = tmp_path / "prov.jsonl"
        rec.write_jsonl(str(path))
        spans = read_jsonl(path.read_text())
        assert len(spans) == len(rec.nodes)
        assert all(str(s["span_id"]).startswith("p") for s in spans)
        assert all(str(s["name"]).startswith("prov.") for s in spans)


class TestAmbientActivation:
    def test_off_by_default(self):
        assert active_recorder() is None

    def test_recording_context_nests_and_restores(self):
        with recording() as outer:
            assert active_recorder() is outer
            with recording(ProvenanceRecorder()) as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        assert active_recorder() is None

    def test_engines_pick_up_ambient_recorder(self):
        program = parse_program(BANK_TEXT)
        db = parse_database("balance(a, 100). balance(b, 10).")
        with recording() as rec:
            engine = select_engine(program, "transfer(a, b, 30)")
            list(engine.solve("transfer(a, b, 30)", db))
        assert rec.nodes and rec.solutions()


class TestZeroOverheadOff:
    """provenance=None must leave the counter stream byte-identical."""

    def _counters(self, provenance):
        inst = Instrumentation.create()
        with instrumented(inst):
            bank_run(provenance)
        snap = inst.metrics.snapshot(include_timers=False)
        return {
            "counters": snap["counters"],
            "gauges": snap["gauges"],
        }

    def test_disabled_runs_are_byte_identical(self):
        a = json.dumps(self._counters(None), sort_keys=True)
        b = json.dumps(self._counters(None), sort_keys=True)
        assert a == b

    def test_recorder_adds_only_prov_counters(self):
        plain = self._counters(None)
        traced = self._counters(ProvenanceRecorder())
        prov_keys = {
            k: v for k, v in traced["counters"].items() if k.startswith("prov.")
        }
        assert prov_keys.get("prov.nodes", 0) > 0
        traced["counters"] = {
            k: v for k, v in traced["counters"].items() if not k.startswith("prov.")
        }
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )


class TestHelpers:
    def test_render_bindings_caps(self):
        subst = {"V%02d" % i: i for i in range(12)}
        out = render_bindings(subst, limit=8)
        assert len(out) == 9 and out["..."] == "+4 more"

    def test_db_delta_and_cap(self):
        before = parse_database("a(1). b(2).")
        after = parse_database("b(2). c(3).")
        ins, dels = db_delta(before, after)
        assert ins == ("c(3)",) and dels == ("a(1)",)
        assert db_delta(before, before) == ((), ())
        wide = parse_database(" ".join("f(%d)." % i for i in range(70)))
        ins, _ = db_delta(parse_database(""), wide, cap=64)
        assert len(ins) == 65 and ins[-1].endswith("more)")

    def test_config_digest_stable_and_distinct(self):
        db1 = parse_database("a(1).")
        db2 = parse_database("a(2).")
        assert config_digest("goal", db1) == config_digest("goal", db1)
        assert config_digest("goal", db1) != config_digest("goal", db2)

    def test_action_delta_flattens_iso(self):
        program = parse_program(BANK_TEXT)
        db = parse_database("balance(a, 100). balance(b, 10).")
        execution = Interpreter(program).simulate(
            parse_goal("transfer(a, b, 30)"), db
        )
        iso_actions = [a for a in execution.trace if a.kind == "iso"]
        assert iso_actions
        ins, dels = action_delta(iso_actions[0])
        assert "balance(a, 70)" in ins and "balance(a, 100)" in dels
