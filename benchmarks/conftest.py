"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md
section 3): it sweeps a size parameter, prints the measured series as a
table (archived in EXPERIMENTS.md), asserts the *shape* the paper
predicts (who wins, what growth class), and registers one representative
configuration with pytest-benchmark for timing stats.

Shape assertions use machine-independent counters (execution steps,
table sizes) wherever possible so they hold on slow CI machines too.

The series tables are replayed in the terminal summary so they reach
stdout whatever capture mode pytest runs under.
"""

import json

import pytest

from repro.complexity.runner import recorded_series
from repro.obs import Instrumentation, instrumented

#: (test id, deterministic metrics snapshot) per benchmark, in run
#: order.  BENCH_*.json writers read this to attach the explanatory
#: counters (configurations expanded, table hits, budget spent, ...)
#: alongside each timing entry.
_METRIC_SNAPSHOTS = []


def recorded_metrics():
    """Metrics snapshots collected so far (most recent last)."""
    return list(_METRIC_SNAPSHOTS)


@pytest.fixture(autouse=True)
def bench_instrumentation(request):
    """Run every benchmark under engine instrumentation.

    The deterministic snapshot (counters/gauges, no wall clock) is
    attached to the test report via ``user_properties`` -- so any
    result consumer, including future BENCH_*.json emitters, can
    explain *why* a configuration was fast or slow -- and kept in
    :func:`recorded_metrics` for the terminal summary.
    """
    inst = Instrumentation.create()
    with instrumented(inst):
        yield inst
    snapshot = inst.metrics.snapshot(include_timers=False)
    if snapshot["counters"] or snapshot["gauges"]:
        _METRIC_SNAPSHOTS.append((request.node.nodeid, snapshot))
        request.node.user_properties.append(("metrics", snapshot))


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-json",
        default=None,
        metavar="FILE",
        help="write every benchmark's deterministic metrics snapshot "
             "to FILE as JSON (consumed by perf tooling alongside "
             "BENCH_*.json timings)",
    )
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="representative subset: run only the first benchmark of "
             "each bench_*.py module (one per paper artifact); used by "
             "the CI profile-gate job to keep metrics artifacts cheap",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--quick"):
        return
    seen_modules = set()
    selected, deselected = [], []
    for item in items:
        module = item.nodeid.split("::", 1)[0]
        if module in seen_modules:
            deselected.append(item)
        else:
            seen_modules.add(module)
            selected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--metrics-json", default=None)
    if not path:
        return
    payload = [
        {"nodeid": nodeid, "metrics": snapshot}
        for nodeid, snapshot in _METRIC_SNAPSHOTS
    ]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_series()
    if tables:
        terminalreporter.section("experiment series (paper artifacts)")
        for table in tables:
            for line in table.splitlines():
                terminalreporter.write_line(line)
    if _METRIC_SNAPSHOTS:
        terminalreporter.section("engine metrics (per benchmark)")
        for nodeid, snapshot in _METRIC_SNAPSHOTS:
            counters = snapshot["counters"]
            digest = ", ".join(
                "%s=%d" % (name, counters[name]) for name in sorted(counters)
            )
            terminalreporter.write_line("%s: %s" % (nodeid, digest or "(no counters)"))
