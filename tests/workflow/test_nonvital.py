"""Tests for non-vital subtransactions (advanced transaction models)."""

import pytest

from repro.workflow import (
    Agent,
    NonVital,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)


def spec_with_optional_qc():
    """Pipeline whose quality-control step is non-vital: if no qualified
    agent exists, the item still flows through."""
    return WorkflowSpec(
        "flow",
        SeqFlow(Step("main"), NonVital(Step("qc")), Step("finish")),
        (Task("main", role="tech"), Task("qc", role="inspector"),
         Task("finish", role="tech")),
    )


class TestNonVital:
    def test_body_runs_when_possible(self):
        sim = WorkflowSimulator(
            [spec_with_optional_qc()],
            agents=[Agent("t", ("tech",)), Agent("q", ("inspector",))],
        )
        res = sim.run(["w1"])
        assert res.completed("qc") == ["w1"]
        assert res.completed("finish") == ["w1"]

    def test_parent_survives_body_failure(self):
        # no inspector: a vital qc step would deadlock the workflow;
        # the non-vital one is skipped.
        sim = WorkflowSimulator(
            [spec_with_optional_qc()],
            agents=[Agent("t", ("tech",))],
        )
        res = sim.run(["w1"])
        assert res.completed("qc") == []
        assert res.completed("finish") == ["w1"]

    def test_vital_version_deadlocks(self):
        vital = WorkflowSpec(
            "flow",
            SeqFlow(Step("main"), Step("qc"), Step("finish")),
            (Task("main", role="tech"), Task("qc", role="inspector"),
             Task("finish", role="tech")),
        )
        sim = WorkflowSimulator([vital], agents=[Agent("t", ("tech",))])
        with pytest.raises(RuntimeError):
            sim.run(["w1"])

    def test_nested_nonvital(self):
        spec = WorkflowSpec(
            "flow",
            NonVital(NonVital(Step("a"))),
            (Task("a", role="ghost_role"),),
        )
        sim = WorkflowSimulator([spec], agents=[])
        res = sim.run(["w1"])
        assert res.completed("a") == []

    def test_validation_reaches_body(self):
        spec = WorkflowSpec("flow", NonVital(Step("missing")), ())
        with pytest.raises(ValueError):
            spec.validate()
