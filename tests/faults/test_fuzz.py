"""The store fuzz harness: crash-point matrix, corruption matrix, and
byte-identity of the committed report.

These tests run the real harness end to end (each case builds, damages,
and reopens an actual ``.tdlog`` file), so they double as the acceptance
check for PR 9's headline property: every named crash point and every
mutation class ends in oracle-equal recovery or a clean, diagnosed
refusal -- never a violation.
"""

import pathlib

import pytest

from repro.faults import CRASH_POINTS
from repro.faults.fuzz import (
    MUTATIONS,
    FuzzOutcome,
    format_fuzz_report,
    run_corruption_case,
    run_crash_case,
    run_store_fuzz,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestCrashCases:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_every_named_point_recovers(self, point, tmp_path):
        outcomes = [
            run_crash_case(point, seed, str(tmp_path)) for seed in range(4)
        ]
        assert not [o for o in outcomes if o.violation], outcomes
        # At least one script per point must actually fire the crash
        # (all "no-event" would mean the point is never exercised).
        assert any(o.outcome == "recovered" for o in outcomes), outcomes

    def test_case_is_deterministic(self, tmp_path):
        first = run_crash_case("mid-checkpoint-fold", 3, str(tmp_path))
        again = run_crash_case("mid-checkpoint-fold", 3, str(tmp_path))
        assert first == again


class TestCorruptionCases:
    def test_no_violations_across_all_mutations(self, tmp_path):
        outcomes = [
            run_corruption_case(seed, str(tmp_path)) for seed in range(24)
        ]
        assert not [o for o in outcomes if o.violation], outcomes

    def test_seed_cycle_covers_every_mutation_class(self, tmp_path):
        labels = {
            run_corruption_case(seed, str(tmp_path)).label
            for seed in range(len(MUTATIONS))
        }
        assert labels == set(MUTATIONS)

    def test_payload_flip_is_refused_then_repaired(self, tmp_path):
        # seed 0 -> flip-wal-payload: CRC catches it, fsck --repair
        # rolls back to the good prefix.
        outcome = run_corruption_case(0, str(tmp_path))
        assert outcome.label == "flip-wal-payload"
        assert outcome.outcome == "refused+repaired"

    def test_torn_tail_recovers_to_a_prefix(self, tmp_path):
        # seed 2 -> truncate-wal-final: recovery truncates in-line, no
        # fsck needed, landing on a shorter WAL-prefix state.
        outcome = run_corruption_case(2, str(tmp_path))
        assert outcome.label == "truncate-wal-final"
        assert outcome.outcome == "recovered-prefix"


class TestReport:
    def test_violations_flip_the_verdict(self):
        ok = format_fuzz_report(
            [FuzzOutcome("crash", "post-fsync", 0, "recovered")]
        )
        assert "verdict: OK (1 case(s), 0 violation(s))" in ok
        bad = format_fuzz_report(
            [FuzzOutcome("crash", "post-fsync", 0, "violation",
                         violation="state leaked")]
        )
        assert "verdict: FAIL" in bad
        assert "VIOLATION crash/post-fsync seed 0: state leaked" in bad

    def test_committed_matrix_regenerates_byte_identically(self):
        # The committed report's exact generation parameters; any drift
        # in scripts, oracles, or formatting shows up as a diff here.
        committed = (
            REPO / "benchmarks" / "chaos" / "store_fuzz_matrix.txt"
        ).read_text()
        regenerated = format_fuzz_report(
            run_store_fuzz(crash_seeds=8, corruption_cases=64, base_seed=0)
        )
        assert regenerated + "\n" == committed
