"""Tests for Minsky counter machines."""

import pytest

from repro.machines import CounterMachine, CounterProgramError, Dec, Halt, Inc
from repro.machines.counter import (
    double_program,
    parity_program,
    transfer_program,
)


class TestValidation:
    def test_bad_counter_index(self):
        with pytest.raises(CounterProgramError):
            CounterMachine((Inc(2, 0),))

    def test_bad_jump_target(self):
        with pytest.raises(CounterProgramError):
            CounterMachine((Inc(0, 5), Halt()))

    def test_dec_targets_checked(self):
        with pytest.raises(CounterProgramError):
            CounterMachine((Dec(0, 0, 9), Halt()))


class TestExecution:
    def test_transfer(self):
        accepted, c0, c1, _steps = transfer_program().run(c0=5, c1=2)
        assert accepted and c0 == 0 and c1 == 7

    def test_double(self):
        accepted, c0, c1, _steps = double_program().run(c0=4)
        assert accepted and c1 == 8

    @pytest.mark.parametrize("n,expected", [(0, True), (1, False), (2, True),
                                            (5, False), (8, True)])
    def test_parity(self, n, expected):
        assert parity_program().accepts(c0=n) == expected

    def test_rejecting_halt(self):
        assert not parity_program().accepts(c0=3)

    def test_step_count_grows_with_input(self):
        _, _, _, s1 = transfer_program().run(c0=5)
        _, _, _, s2 = transfer_program().run(c0=50)
        assert s2 > s1

    def test_timeout(self):
        spin = CounterMachine((Inc(0, 0),))
        with pytest.raises(TimeoutError):
            spin.run(max_steps=100)
