"""Tests for the measurement helpers."""

import pytest

from repro.complexity import estimate_growth, measure, print_series


class TestMeasure:
    def test_returns_result_and_time(self):
        value, seconds = measure(lambda: sum(range(1000)))
        assert value == 499500
        assert seconds >= 0


class TestEstimateGrowth:
    def test_polynomial_detected(self):
        sizes = [10, 20, 40, 80, 160]
        costs = [s**2 for s in sizes]
        assert estimate_growth(sizes, costs) == "polynomial"

    def test_linear_is_polynomial(self):
        sizes = [10, 20, 40, 80]
        costs = [3 * s for s in sizes]
        assert estimate_growth(sizes, costs) == "polynomial"

    def test_exponential_detected(self):
        sizes = [2, 4, 6, 8, 10, 12]
        costs = [2**s for s in sizes]
        assert estimate_growth(sizes, costs) == "exponential"

    def test_exponential_with_noise(self):
        sizes = [2, 4, 6, 8, 10]
        costs = [1.1 * 2**s + 5 for s in sizes]
        assert estimate_growth(sizes, costs) == "exponential"

    def test_too_few_points(self):
        assert estimate_growth([1, 2], [1, 2]) == "inconclusive"

    def test_zero_costs_filtered(self):
        assert estimate_growth([1, 2, 3], [0, 0, 0]) == "inconclusive"


class TestPrintSeries:
    def test_prints_aligned_table(self, capsys):
        print_series(
            "demo",
            ["n", "time"],
            [[1, 0.5], [100, 2.25]],
        )
        out = capsys.readouterr().out
        assert "== demo ==" in out
        assert "0.5000" in out
        assert "100" in out
