"""Span-correlated workflow analytics: latency, utilization, critical path."""

import json

import pytest

from repro.cli import main
from repro.lims import build_lab_simulator, gel_pipeline, sample_batch
from repro.obs import Instrumentation, instrumented
from repro.workflow import (
    Choice,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WorkflowSpec,
)
from repro.workflow.analytics import (
    agent_utilization,
    attribute_wall_clock,
    critical_path,
    item_flows,
    latency_by_task,
    render_analytics,
    task_executions,
)
from repro.workflow.eventlog import EventRecord


def R(seq, kind, item, task=None, agent=None, span_id=None):
    return EventRecord(seq, kind, item, task=task, agent=agent, span_id=span_id)


@pytest.fixture
def records():
    """A hand-built log: one item, two tasks, the second iterated twice."""
    return [
        R(0, "item_dispatched", "w1"),
        R(2, "task_started", "w1", task="prep", span_id="s1"),
        R(5, "task_done", "w1", task="prep", agent="ada", span_id="s1"),
        R(6, "task_started", "w1", task="gel", span_id="s1"),
        R(8, "task_done", "w1", task="gel", agent="bob", span_id="s1"),
        R(9, "task_started", "w1", task="gel", span_id="s1"),
        R(10, "task_done", "w1", task="gel", agent="bob", span_id="s1"),
    ]


class TestTaskExecutions:
    def test_pairs_started_done(self, records):
        execs = task_executions(records)
        assert [(e.task, e.start_seq, e.done_seq) for e in execs] == [
            ("prep", 2, 5), ("gel", 6, 8), ("gel", 9, 10),
        ]
        assert [e.latency for e in execs] == [3, 2, 1]
        assert execs[0].agent == "ada"
        assert execs[0].span_id == "s1"

    def test_repeated_rounds_pair_fifo(self):
        log = [
            R(0, "task_started", "w", task="t"),
            R(1, "task_started", "w", task="t"),
            R(3, "task_done", "w", task="t", agent="a"),
            R(7, "task_done", "w", task="t", agent="a"),
        ]
        assert [(e.start_seq, e.done_seq) for e in task_executions(log)] == [
            (0, 3), (1, 7),
        ]

    def test_unmatched_start_dropped(self):
        log = [R(0, "task_started", "w", task="t")]
        assert task_executions(log) == []

    def test_latency_aggregation(self, records):
        stats = latency_by_task(records)
        assert stats["gel"].count == 2
        assert stats["gel"].total == 3
        assert stats["gel"].mean == 1.5
        assert stats["gel"].min == 1 and stats["gel"].max == 2
        assert stats["prep"].total == 3


class TestAgentsAndFlows:
    def test_agent_utilization(self, records):
        agents = agent_utilization(records)
        # run spans seqs 0..10 -> 10 ticks
        assert agents["ada"].completed == 1
        assert agents["ada"].busy_ticks == 3
        assert agents["ada"].utilization == pytest.approx(0.3)
        assert agents["bob"].busy_ticks == 3

    def test_item_flows(self, records):
        flow = item_flows(records)["w1"]
        assert flow.queue_wait == 2  # dispatched at 0, first start at 2
        assert flow.service_ticks == 6
        assert flow.makespan == 10

    def test_empty_log(self):
        assert agent_utilization([]) == {}
        assert item_flows([]) == {}
        assert latency_by_task([]) == {}


class TestWallClockAttribution:
    def test_scales_span_duration_by_ticks(self, records):
        spans = [{"span_id": "s1", "duration": 1.2}]
        wall = attribute_wall_clock(records, spans)
        assert wall["prep"] == pytest.approx(1.2 * 3 / 6)
        assert wall["gel"] == pytest.approx(1.2 * 3 / 6)

    def test_no_span_id_no_attribution(self):
        log = [
            R(0, "task_started", "w", task="t"),
            R(1, "task_done", "w", task="t", agent="a"),
        ]
        assert attribute_wall_clock(log, [{"span_id": "s1", "duration": 1.0}]) == {}

    def test_unmatched_span_ignored(self, records):
        assert attribute_wall_clock(records, [{"span_id": "s9", "duration": 1.0}]) == {}


class TestCriticalPath:
    def test_longest_path_without_observations(self):
        spec = WorkflowSpec(
            "w",
            SeqFlow(Step("a"), ParFlow(Step("b"), SeqFlow(Step("c"), Step("d")))),
            (Task("a"), Task("b"), Task("c"), Task("d")),
        )
        path = critical_path(spec)
        assert path.tasks == ("a", "c", "d")
        assert path.cost == 3.0

    def test_weights_steer_branch_choice(self):
        spec = WorkflowSpec(
            "w",
            SeqFlow(Step("a"), Choice(Step("cheap"), Step("dear"))),
            (Task("a"), Task("cheap"), Task("dear")),
        )
        log = [
            R(0, "task_started", "w1", task="a"),
            R(1, "task_done", "w1", task="a", agent="x"),
            R(2, "task_started", "w1", task="dear"),
            R(9, "task_done", "w1", task="dear", agent="x"),
        ]
        path = critical_path(spec, log)
        assert path.tasks == ("a", "dear")
        assert path.cost == pytest.approx(8.0)

    def test_iterated_rounds_fold_into_step_weight(self):
        from repro.workflow import Iterate

        spec = WorkflowSpec(
            "w", SeqFlow(Iterate(Step("t"), until="done")), (Task("t"),)
        )
        log = [
            R(0, "task_started", "w1", task="t"),
            R(1, "task_done", "w1", task="t", agent="x"),
            R(2, "task_started", "w1", task="t"),
            R(4, "task_done", "w1", task="t", agent="x"),
        ]
        path = critical_path(spec, log)
        assert path.cost == pytest.approx(3.0)  # both rounds, one item

    def test_subflow_recurses_and_cycles_terminate(self):
        inner = WorkflowSpec("inner", SeqFlow(Step("x"), Subflow("outer")), (Task("x"),))
        outer = WorkflowSpec("outer", SeqFlow(Step("y"), Subflow("inner")), (Task("y"),))
        path = critical_path(outer, all_specs=(inner, outer))
        assert path.tasks == ("y", "x")
        assert path.cost == 2.0


class TestRealSimulation:
    @pytest.fixture(scope="class")
    def run(self):
        inst = Instrumentation.create()
        with instrumented(inst):
            sim = build_lab_simulator()
            result = sim.run(sample_batch(2))
        return result, inst

    def test_span_join_against_real_trace(self, run):
        result, inst = run
        wall = attribute_wall_clock(result, inst.tracer.spans)
        assert set(wall) == {t.name for t in gel_pipeline().tasks}
        # Instrumented runs carry exact per-task spans: every duration is
        # measured, positive, and bounded by the enclosing simulate span.
        sim_span = next(s for s in inst.tracer.spans if s.name == "workflow.simulate")
        assert all(v > 0 for v in wall.values())
        assert sum(wall.values()) <= sim_span.duration * len(wall)

    def test_exact_spans_preferred_over_estimation(self, run):
        result, inst = run
        task_spans = [s for s in inst.tracer.spans if s.name == "workflow.task"]
        assert task_spans  # scheduler stamped one per completed execution
        assert len(task_spans) == len(task_executions(result))
        wall = attribute_wall_clock(result, inst.tracer.spans)
        # Exact join: per-task wall is the sum of that task's span durations.
        by_task = {}
        for span in task_spans:
            by_task[span.attrs["task"]] = (
                by_task.get(span.attrs["task"], 0.0) + span.duration
            )
        for task, total in by_task.items():
            assert wall[task] == pytest.approx(total)

    def test_critical_path_on_genome_pipeline(self, run):
        result, _ = run
        path = critical_path(gel_pipeline(iterate=False), result)
        assert path.tasks[0] == "receive"
        assert path.tasks[-1] == "analyze"
        assert "read_gel" in path.tasks
        assert path.cost > 0

    def test_render_has_all_sections(self, run):
        result, inst = run
        text = render_analytics(
            result, spec=gel_pipeline(iterate=False), spans=inst.tracer.spans
        )
        assert "per-task latency" in text
        # Instrumented run -> exact task spans -> measured, not estimated.
        assert "wall" in text and "est. wall" not in text
        assert "agent utilization" in text
        assert "queue wait vs. service" in text
        assert "critical path" in text


class TestAnalyzeCli:
    def test_demo_mode_reports_latency_and_critical_path(self, capsys):
        rc = main(["analyze", "--demo-lab", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-task latency" in out
        assert "critical path" in out
        assert "receive" in out and "analyze" in out
        # Demo runs instrumented, so wall times are exact task spans.
        assert "wall" in out and "est. wall" not in out

    def test_eventlog_file_mode_with_trace_join(self, tmp_path, capsys):
        from repro.workflow.eventlog import to_json

        inst = Instrumentation.create()
        with instrumented(inst):
            result = build_lab_simulator().run(sample_batch(2))
        log_path = tmp_path / "events.json"
        log_path.write_text(to_json(result))
        trace_path = tmp_path / "trace.jsonl"
        inst.tracer.write_jsonl(str(trace_path))
        rc = main(["analyze", str(log_path), "--trace", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-task latency" in out
        # The serialized trace round-trips workflow.task spans as dicts.
        assert "wall" in out and "est. wall" not in out

    def test_eventlog_file_mode_without_trace(self, tmp_path, capsys):
        log = [
            {"seq": 0, "kind": "task_started", "item": "w1", "task": "t"},
            {"seq": 3, "kind": "task_done", "item": "w1", "task": "t", "agent": "a"},
        ]
        path = tmp_path / "events.json"
        path.write_text(json.dumps(log))
        rc = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "t" in out and "est. wall" not in out
