"""Exception hierarchy for the Transaction Datalog engines.

Every engine error derives from :class:`ReproError`, which carries three
structured fields so callers (the CLI, the chaos harness, monitoring)
can react programmatically instead of parsing messages:

``goal``
    The goal whose evaluation raised, when known (a formula or its
    rendered string).  Attached at the outermost search layer, so nested
    isolation sub-searches report the *user's* goal, not the sub-body.
``spent``
    How much of a budget was consumed before the error, when the error
    is budget-shaped (``None`` otherwise).
``checkpoint``
    A resumable :class:`~repro.core.interpreter.Checkpoint` of the
    interrupted search, when one could be captured (breadth-first
    searches; ``None`` for depth-first simulation and the analytic
    engines).  ``Interpreter.resume(checkpoint)`` continues the search.

``TDError`` is kept as an alias of :class:`ReproError` for existing
``except TDError`` sites.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "TDError",
    "SafetyError",
    "SearchBudgetExceeded",
    "AttemptBudgetExceeded",
    "DeadlineExceeded",
    "UnsupportedProgramError",
]


class ReproError(Exception):
    """Base class for engine errors, with structured context fields.

    ``goal``, ``spent`` and ``checkpoint`` default to ``None`` and are
    filled in by whichever layer knows them (see module docstring); the
    fields survive re-raising because layers annotate the *same*
    exception object as it propagates.
    """

    def __init__(
        self,
        *args: object,
        goal: Optional[object] = None,
        spent: Optional[int] = None,
        checkpoint: Optional[Any] = None,
    ):
        super().__init__(*args)
        self.goal = goal
        self.spent = spent
        self.checkpoint = checkpoint


#: Backwards-compatible alias (the pre-robustness base class name).
TDError = ReproError


class SafetyError(ReproError):
    """An elementary update or builtin was executed with unbound variables.

    TD is a safe language; engines surface violations loudly instead of
    guessing bindings.
    """


class SearchBudgetExceeded(ReproError):
    """The search exhausted its configuration budget without an answer.

    Full TD is RE-complete, so the interpreter is a *semi*-decision
    procedure: when the budget runs out the query's status is unknown,
    which is reported as this exception rather than as failure.

    ``spent`` is how much of the budget was actually consumed when the
    search gave up (equal to ``explored`` unless the raiser counts
    something coarser, e.g. the state-space explorer counting interned
    states while nested isolation searches spend the same budget).

    When the interrupted search was breadth-first, ``checkpoint`` holds
    a resumable :class:`~repro.core.interpreter.Checkpoint` (frontier
    plus visited summary); ``Interpreter.resume`` continues exactly
    where the budget fired.
    """

    def __init__(
        self,
        explored: int,
        budget: int,
        spent: Optional[int] = None,
        *,
        goal: Optional[object] = None,
        checkpoint: Optional[Any] = None,
    ):
        self.explored = explored
        self.budget = budget
        super().__init__(
            "search explored %d configurations (budget %d, spent %d) "
            "without resolving the goal"
            % (explored, budget, explored if spent is None else spent),
            goal=goal,
            spent=explored if spent is None else spent,
            checkpoint=checkpoint,
        )


class AttemptBudgetExceeded(SearchBudgetExceeded):
    """A *bounded attempt* (``with_budget`` / ``iso`` with a budget cap)
    exhausted its private budget.

    Unlike its parent this is not an abort: the isolation runner catches
    it and treats the attempt as *failed*, which rolls the sub-execution
    back (the paper's rollback-on-failure) and lets recovery combinators
    such as ``fallback`` take over.  It only escapes to user code when a
    bounded attempt is run directly.
    """


class DeadlineExceeded(ReproError):
    """A cooperative deadline fired mid-search.

    The interpreter checks the deadline between configuration
    expansions (never inside an elementary step), so the database seen
    by the caller is always a consistent pre-step state.  Like
    :class:`SearchBudgetExceeded`, breadth-first searches attach a
    resumable ``checkpoint``.
    """

    def __init__(
        self,
        elapsed: float,
        deadline: float,
        *,
        goal: Optional[object] = None,
        spent: Optional[int] = None,
        checkpoint: Optional[Any] = None,
    ):
        self.elapsed = elapsed
        self.deadline = deadline
        super().__init__(
            "search deadline of %.3fs exceeded after %.3fs (cooperative stop)"
            % (deadline, elapsed),
            goal=goal,
            spent=spent,
            checkpoint=checkpoint,
        )


class UnsupportedProgramError(ReproError):
    """A program uses features outside the selected engine's sublanguage
    (e.g. concurrent composition fed to the sequential evaluator)."""
