"""Fault plans: seeded determinism, windows, transience, horizon."""

import pytest

from repro.faults import (
    CRASH_POINTS,
    AdversarialOrder,
    AgentOutage,
    Exhaustion,
    FaultPlan,
    StepFault,
    StoreCrash,
    Window,
    generate_plan,
)


class TestWindow:
    def test_half_open_interval(self):
        w = Window(2, 5)
        assert not w.active(1)
        assert w.active(2)
        assert w.active(4)
        assert not w.active(5)

    def test_permanent_window_never_closes(self):
        w = Window(3, None)
        assert not w.active(2)
        assert w.active(3)
        assert w.active(10**9)
        assert not w.transient

    def test_bounded_window_is_transient(self):
        assert Window(0, 1).transient


class TestFaultPlan:
    def test_transient_requires_bounded_windows(self):
        bounded = FaultPlan(0, step_faults=(StepFault("ins", "p", Window(0, 5)),))
        assert bounded.transient
        permanent = FaultPlan(
            0, outages=(AgentOutage("ana", Window(0, None)),)
        )
        assert not permanent.transient

    def test_exhaustion_is_never_transient(self):
        plan = FaultPlan(0, exhaustion=(Exhaustion(10),))
        assert not plan.transient

    def test_horizon_is_last_window_stop(self):
        plan = FaultPlan(
            0,
            step_faults=(StepFault("del", "q", Window(1, 7)),),
            outages=(AgentOutage("raj", Window(0, 12)),),
            adversarial=(AdversarialOrder(Window(2, 4)),),
        )
        assert plan.horizon == 12
        assert FaultPlan(0).horizon == 0

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(
            9,
            step_faults=(StepFault("ins", "p", Window(0, 5)),),
            exhaustion=(Exhaustion(3, "deadline"),),
        )
        text = plan.describe()
        assert "seed 9" in text
        assert "ins.p" in text
        assert "deadline exhaustion at tick 3" in text


class TestStoreCrash:
    def test_named_crash_points_in_lifecycle_order(self):
        assert CRASH_POINTS == (
            "pre-fsync",
            "post-fsync",
            "mid-checkpoint-fold",
            "mid-savepoint-release",
        )

    def test_default_point_is_the_pre_pr9_behaviour(self):
        # Plans written before crash points existed keep their meaning.
        assert StoreCrash(Window(1, 2)).point == "post-fsync"

    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            StoreCrash(Window(1, 2), point="mid-air")

    def test_describe_names_the_point(self):
        crash = StoreCrash(Window(3, 4), point="mid-checkpoint-fold")
        assert "mid-checkpoint-fold" in str(crash)
        plan = FaultPlan(0, store_crashes=(crash,))
        assert "mid-checkpoint-fold" in plan.describe()
        assert not plan.transient

    def test_same_window_different_point_differ(self):
        a = StoreCrash(Window(1, 2), point="pre-fsync")
        b = StoreCrash(Window(1, 2), point="post-fsync")
        assert a != b


class TestGeneratePlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(predicates=("p", "q"), agents=("ana", "raj"),
                      allow_exhaustion=True, allow_permanent=True)
        for seed in range(40):
            assert generate_plan(seed, **kwargs) == generate_plan(seed, **kwargs)

    def test_different_seeds_differ(self):
        plans = {generate_plan(s, predicates=("p",), agents=("a",))
                 for s in range(30)}
        assert len(plans) > 10

    def test_default_generation_is_transient(self):
        for seed in range(60):
            plan = generate_plan(seed, predicates=("p",), agents=("a",))
            assert plan.transient, plan.describe()

    def test_generation_targets_given_predicates_and_agents(self):
        for seed in range(60):
            plan = generate_plan(seed, predicates=("p", "q"), agents=("ana",))
            for fault in plan.step_faults:
                assert fault.pred in ("p", "q")
            for outage in plan.outages:
                assert outage.agent == "ana"

    def test_exhaustion_only_when_allowed(self):
        assert all(
            not generate_plan(s, predicates=("p",)).exhaustion
            for s in range(60)
        )
        assert any(
            generate_plan(s, predicates=("p",), allow_exhaustion=True).exhaustion
            for s in range(60)
        )
