"""The fault injector the interpreter consults during search.

:class:`FaultInjector` implements the duck-typed ``faults`` hook of
:class:`~repro.core.interpreter.Interpreter`: ``perturb(process,
database, steps)`` is called once per configuration expansion (nested
isolation searches included) and may drop matching steps, reorder them
adversarially, or raise a forced exhaustion -- all exactly as scripted
by the :class:`~repro.faults.plan.FaultPlan`.

Each ``perturb`` call advances the injector's **tick** by one, so a
plan's windows open and close as the search runs; retried attempts of
the same sub-goal land on later ticks, which is how transient faults
expire under ``retry``.

Determinism: the injector holds no RNG at all -- every decision is a
pure function of (plan, tick, step), and the tick sequence is fixed by
the interpreter's own deterministic expansion order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..core.errors import DeadlineExceeded, SearchBudgetExceeded
from ..core.formulas import apply_subst
from ..core.transitions import Action, Step, frontier_blocked
from ..obs.context import active

__all__ = ["FaultInjector"]


class FaultInjector:
    """Apply a :class:`FaultPlan` to a search, one tick per expansion.

    Counters (when instrumentation is active): ``faults.ticks``,
    ``faults.steps_dropped``, ``faults.reordered_expansions``,
    ``faults.exhaustion_injected``.
    """

    def __init__(self, plan):
        self.plan = plan
        self.tick = 0
        self.dropped = 0
        self.reordered = 0
        self._dormant = False

    @property
    def dormant(self) -> bool:
        """True once no fault can fire at this tick or any later one.

        From that point the remaining search is exactly fault-free, so
        the interpreter may re-enable its failed-state memoization (a
        tick-dependent injector is what forces it off in the first
        place).  Ticks only increase, so dormancy is latched.
        """
        if self._dormant:
            return True
        tick = self.tick
        plan = self.plan
        for forced in plan.exhaustion:
            if forced.at_tick >= tick:
                return False
        for fault in plan.step_faults:
            if fault.window.stop is None or fault.window.stop > tick:
                return False
        for outage in plan.outages:
            if outage.window.stop is None or outage.window.stop > tick:
                return False
        for order in plan.adversarial:
            if order.window.stop is None or order.window.stop > tick:
                return False
        self._dormant = True
        return True

    # -- interpreter hook ---------------------------------------------------

    def perturb(
        self, process, database, steps: Iterable[Step]
    ) -> Iterator[Step]:
        tick = self.tick
        self.tick += 1
        obs = active()
        if obs.enabled:
            obs.metrics.inc("faults.ticks")
        for forced in self.plan.exhaustion:
            if forced.at_tick == tick:
                if obs.enabled:
                    obs.metrics.inc("faults.exhaustion_injected")
                if forced.kind == "deadline":
                    exc = DeadlineExceeded(float(tick), float(tick))
                else:
                    exc = SearchBudgetExceeded(tick, tick, spent=tick)
                exc.injected = True
                raise exc
        adversarial = any(
            a.window.active(tick) for a in self.plan.adversarial
        )
        if not adversarial:
            return self._filtered(steps, tick, obs)
        return iter(self._worst_first(steps, tick, obs))

    # -- internals ----------------------------------------------------------

    def _filtered(self, steps, tick, obs) -> Iterator[Step]:
        for step in steps:
            if self._dropped(step, tick, obs):
                continue
            yield step

    def _worst_first(self, steps, tick, obs):
        """Materialize and reorder: blocked-frontier steps first, then
        reversed program order within each group -- the inverse of the
        DFS scheduler's own ready-first heuristic."""
        blocked = []
        ready = []
        for step in steps:
            if self._dropped(step, tick, obs):
                continue
            local = apply_subst(step.local, step.subst)
            if frontier_blocked(local, step.database):
                blocked.append(step)
            else:
                ready.append(step)
        blocked.reverse()
        ready.reverse()
        self.reordered += 1
        if obs.enabled:
            obs.metrics.inc("faults.reordered_expansions")
        return blocked + ready

    def _dropped(self, step: Step, tick: int, obs) -> bool:
        if self._matches(step.action, tick):
            self.dropped += 1
            if obs.enabled:
                obs.metrics.inc("faults.steps_dropped")
            return True
        return False

    def _matches(self, action: Action, tick: int) -> bool:
        for fault in self.plan.step_faults:
            if not fault.window.active(tick):
                continue
            if _action_matches(fault, action):
                return True
            if (
                fault.scan_iso
                and action.kind == "iso"
                and _subtrace_matches(fault, action)
            ):
                return True
        for outage in self.plan.outages:
            if not outage.window.active(tick):
                continue
            if _outage_matches(outage, action):
                return True
        return False


def _action_matches(fault, action: Action) -> bool:
    if fault.kind != "*" and fault.kind != action.kind:
        return False
    if fault.pred is not None:
        atom = action.atom
        if atom is None or atom.pred != fault.pred:
            return False
        if fault.arg is not None and not _has_arg(atom, fault.arg):
            return False
    return True


def _subtrace_matches(fault, action: Action) -> bool:
    """Does any elementary action inside an iso subtrace match *fault*?"""
    stack = list(action.subtrace or ())
    while stack:
        inner = stack.pop()
        if inner.kind == "iso":
            stack.extend(inner.subtrace or ())
            continue
        if fault.kind in ("*", inner.kind):
            atom = inner.atom
            if fault.pred is None:
                return True
            if atom is not None and atom.pred == fault.pred:
                if fault.arg is None or _has_arg(atom, fault.arg):
                    return True
    return False


def _outage_matches(outage, action: Action) -> bool:
    """Claiming an agent is ``del.available(agent)``; an iso commit whose
    subtrace claims the agent is vetoed whole (atomic veto)."""
    if action.kind == "del":
        atom = action.atom
        return (
            atom is not None
            and atom.pred == outage.predicate
            and _has_arg(atom, outage.agent)
        )
    if action.kind == "iso":
        stack = list(action.subtrace or ())
        while stack:
            inner = stack.pop()
            if inner.kind == "iso":
                stack.extend(inner.subtrace or ())
            elif inner.kind == "del":
                atom = inner.atom
                if (
                    atom is not None
                    and atom.pred == outage.predicate
                    and _has_arg(atom, outage.agent)
                ):
                    return True
    return False


def _has_arg(atom, value) -> bool:
    rendered = str(value)
    return any(str(arg) == rendered for arg in atom.args)
