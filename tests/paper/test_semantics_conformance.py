"""Semantic conformance corpus.

Table-driven cases pinning the executional semantics of every language
construct: each entry gives (program, goal, initial db, expected set of
final databases).  The whole corpus runs against the full interpreter,
and -- where the fragment allows -- against the analytic engines too,
so the corpus doubles as a cross-engine contract.
"""

import pytest

from repro import (
    Interpreter,
    NonrecursiveEngine,
    SequentialEngine,
    Sublanguage,
    classify,
    parse_database,
    parse_goal,
    parse_program,
)

# Each case: (name, program, goal, db, expected final databases)
CASES = [
    # -- elementary operations ------------------------------------------------
    ("test-succeeds", "t <- p(a).", "t", "p(a).", ["p(a)."]),
    ("test-fails", "t <- p(b).", "t", "p(a).", []),
    ("test-binds", "t <- p(X) * ins.got(X).", "t", "p(a). p(b).",
     ["p(a). p(b). got(a).", "p(a). p(b). got(b)."]),
    ("ins-new", "t <- ins.q(a).", "t", "", ["q(a)."]),
    ("ins-existing-noop", "t <- ins.q(a).", "t", "q(a).", ["q(a)."]),
    ("del-existing", "t <- del.q(a).", "t", "q(a). q(b).", ["q(b)."]),
    ("del-absent-noop", "t <- del.q(zz).", "t", "q(a).", ["q(a)."]),
    ("neg-holds", "t <- not p(a) * ins.ok.", "t", "p(b).", ["p(b). ok."]),
    ("neg-fails", "t <- not p(a).", "t", "p(a).", []),
    ("neg-pattern", "t <- not p(_) * ins.ok.", "t", "q(a).", ["q(a). ok."]),
    ("builtin-compare", "t <- v(N) * N > 2 * ins.big(N).", "t", "v(1). v(3).",
     ["v(1). v(3). big(3)."]),
    ("builtin-arith", "t <- v(N) * M is N + 1 * ins.next(M).", "t", "v(4).",
     ["v(4). next(5)."]),
    ("builtin-eq-constants", "t <- a = a * ins.ok.", "t", "", ["ok."]),
    ("builtin-neq-fails", "t <- a != a.", "t", "", []),

    # -- sequential composition -------------------------------------------------
    ("seq-order-visible", "t <- ins.p(a) * p(a) * ins.ok.", "t", "",
     ["p(a). ok."]),
    ("seq-order-matters", "t <- p(a) * ins.p(a).", "t", "", []),
    ("seq-threading", "t <- ins.a * del.a * not a * ins.ok.", "t", "", ["ok."]),
    ("seq-binding-flows", "t <- p(X) * q(X) * ins.both(X).", "t",
     "p(a). p(b). q(b).", ["p(a). p(b). q(b). both(b)."]),

    # -- rules and choice ----------------------------------------------------------
    ("rule-choice", "t <- ins.a.\nt <- ins.b.", "t", "", ["a.", "b."]),
    ("rule-unification", "pick(a).\nt <- pick(X) * ins.out(X).", "t", "",
     ["out(a)."]),
    ("rule-parameter", "m(X) <- ins.mark(X).", "m(v)", "", ["mark(v)."]),
    ("rule-failure-propagates", "t <- sub.\nsub <- p(zz).", "t", "p(a).", []),
    ("nested-calls", "a <- b.\nb <- c.\nc <- ins.deep.", "a", "", ["deep."]),

    # -- concurrency -------------------------------------------------------------------
    ("conc-both-run", "t <- ins.l | ins.r.", "t", "", ["l. r."]),
    ("conc-communication", "p <- msg(X) * ins.got(X).\nq <- ins.msg(m).",
     "p | q", "", ["msg(m). got(m)."]),
    ("conc-needs-partner", "p <- msg(X) * ins.got(X).", "p", "", []),
    ("conc-mutual", "a <- q(x) * ins.p(x).\nb <- ins.q(x) * p(x).", "a | b", "",
     ["q(x). p(x)."]),
    ("conc-shared-variable", "l(X) <- val(X).\nr(X) <- ins.out(X).",
     "l(X) | r(X)", "val(a).", ["val(a). out(a)."]),
    ("conc-interleaving-states",
     "w <- reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2).",
     "w | w", "reg(0).", ["reg(2).", "reg(1)."]),

    # -- isolation ------------------------------------------------------------------------
    ("iso-atomic", "t <- iso(ins.a * ins.b).", "t", "", ["a. b."]),
    ("iso-failure-is-failure", "t <- iso(p(zz)).", "t", "p(a).", []),
    ("iso-serializes",
     "w <- iso(reg(V) * del.reg(V) * V2 is V + 1 * ins.reg(V2)).",
     "w | w", "reg(0).", ["reg(2)."]),
    ("iso-binds-out", "t(X) <- iso(item(X) * del.item(X)).", "t(X)",
     "item(a).", [""]),
    ("iso-nested", "t <- iso(ins.a * iso(ins.b) * ins.c).", "t", "",
     ["a. b. c."]),

    # -- recursion -----------------------------------------------------------------------
    ("tail-recursion-drain",
     "d <- item(X) * del.item(X) * d.\nd <- not item(_).",
     "d", "item(a). item(b).", [""]),
    ("recursion-no-exit", "loop <- ins.t * del.t * loop.", "loop", "", []),
    ("query-only-recursion",
     "path(X, Y) <- e(X, Y).\npath(X, Y) <- e(X, Z) * path(Z, Y).",
     "path(a, c)", "e(a, b). e(b, c).", ["e(a, b). e(b, c)."]),
]


def _expected_dbs(texts):
    return {parse_database(t) for t in texts}


@pytest.mark.parametrize(
    "name,prog_text,goal_text,db_text,expected",
    CASES,
    ids=[c[0] for c in CASES],
)
def test_interpreter_conformance(name, prog_text, goal_text, db_text, expected):
    program = parse_program(prog_text)
    goal = parse_goal(goal_text)
    db = parse_database(db_text)
    finals = Interpreter(program, max_configs=500_000).final_databases(goal, db)
    assert finals == _expected_dbs(expected)


@pytest.mark.parametrize(
    "name,prog_text,goal_text,db_text,expected",
    CASES,
    ids=[c[0] for c in CASES],
)
def test_analytic_engines_agree(name, prog_text, goal_text, db_text, expected):
    """Where the fragment allows, the analytic engines must reproduce
    the interpreter's verdict exactly."""
    program = parse_program(prog_text)
    goal = parse_goal(goal_text)
    db = parse_database(db_text)
    want = _expected_dbs(expected)
    sub = classify(program, goal)
    if sub is not Sublanguage.FULL and not _uses_conc(program, goal):
        assert SequentialEngine(program).final_databases(goal, db) == want
    if sub is Sublanguage.NONRECURSIVE:
        assert NonrecursiveEngine(program).final_databases(goal, db) == want


def _uses_conc(program, goal):
    from repro.core.formulas import Conc, walk_formulas

    if any(isinstance(s, Conc) for s in walk_formulas(program.resolve_goal(goal))):
        return True
    return any(
        isinstance(s, Conc) for r in program.rules for s in walk_formulas(r.body)
    )
