"""Packaged verification for workflow simulator setups.

:func:`verify_workflow` explores the full configuration space of a
:class:`~repro.workflow.scheduler.WorkflowSimulator` on a concrete batch
and reports what a designer wants signed off before go-live:

* **completability** -- some schedule finishes every instance;
* **deadlock freedom** -- no reachable stuck state (note: a workflow can
  be completable yet have schedules that wedge; TD's angelic semantics
  hides those at runtime, but a designer may still want to know);
* **agent safety** -- no agent is double-booked in any reachable state;
* **completion inevitability** -- *every* schedule finishes (AF), the
  strongest guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.database import Database
from ..core.formulas import Call, Formula, conc
from ..core.terms import atom
from ..workflow.scheduler import WorkflowSimulator
from .properties import can_reach, deadlocks, inevitably, invariant_holds, may_diverge
from .statespace import StateGraph, explore

__all__ = ["WorkflowReport", "verify_workflow"]


@dataclass
class WorkflowReport:
    """Verification outcomes for one workflow setup + batch.

    Reading the numbers under TD's semantics: the language commits a
    transaction iff *some* execution completes, so ``completable`` is
    the paper-level correctness notion.  ``doomed_states`` counts
    configurations from which no completion is reachable -- harmless for
    a backtracking simulator, but each one is a state where a real
    (non-backtracking) workflow engine would wedge, so designers want
    the count to be zero or to understand every entry.
    """

    states: int
    completable: bool
    doomed_states: int
    doomed_example: Optional[List[str]]
    stuck_states: int
    agent_safe: bool
    agent_violation: Optional[List[str]]
    always_completes: bool
    has_cycles: bool

    @property
    def commit_safe(self) -> bool:
        """No reachable configuration is unsalvageable: greedy engines
        cannot wedge."""
        return self.doomed_states == 0

    def summary(self) -> str:
        lines = [
            "explored states:     %d" % self.states,
            "completable:         %s" % _yn(self.completable),
            "commit safe:         %s (doomed states: %d, stuck: %d)"
            % (_yn(self.commit_safe), self.doomed_states, self.stuck_states),
            "agent safe:          %s" % _yn(self.agent_safe),
            "always completes:    %s" % _yn(self.always_completes),
            "may loop forever:    %s" % _yn(self.has_cycles),
        ]
        if self.doomed_example:
            lines.append("doomed trace:        " + "; ".join(self.doomed_example))
        if self.agent_violation:
            lines.append("double-booking trace:" + "; ".join(self.agent_violation))
        return "\n".join(lines)


def _yn(flag: bool) -> str:
    return "yes" if flag else "no"


def _agent_safe(initial: Database) -> Callable[[Database], bool]:
    """An invariant: every agent of the initial pool is, at all times,
    either available or absent (being used) -- never duplicated.  With
    set semantics duplication cannot happen, so the meaningful check is
    against *phantom* availability: an agent marked available twice is
    impossible, but an agent available while also recorded as mid-task
    would be.  We check the conservative property that the available
    pool never exceeds the initial pool."""
    initial_pool = {str(f.args[0]) for f in initial.facts("available")}

    def prop(db: Database) -> bool:
        pool = {str(f.args[0]) for f in db.facts("available")}
        return pool <= initial_pool

    return prop


def verify_workflow(
    simulator: WorkflowSimulator,
    items: Sequence[str],
    pending: Sequence[str] = (),
    environment: bool = False,
    max_states: int = 200_000,
    final_task: Optional[str] = None,
) -> WorkflowReport:
    """Verify *simulator* on a concrete batch by full state exploration.

    ``final_task``: the task whose completion for every item defines
    "done" (defaults to requiring all work items consumed).
    """
    db = simulator.initial_database(items, pending)
    goal: Formula = Call(atom("simulate"))
    if environment or pending:
        goal = conc(goal, Call(atom("env")))
    graph = explore(simulator.program, goal, db, max_states=max_states)

    def completed(state: Database) -> bool:
        if final_task is not None:
            done = {
                str(f.args[1])
                for f in state.facts("done")
                if str(f.args[0]) == final_task
            }
            if not set(items) <= done or not set(pending) <= done:
                return False
        return not state.facts("workitem") and not state.facts("pending")

    final_completed_ids = {
        node.node_id
        for node in graph.nodes
        if node.final and completed(node.database)
    }
    completable = bool(final_completed_ids)
    stuck = deadlocks(graph)
    agent_safe, agent_violation = invariant_holds(graph, _agent_safe(db))

    # Doomed states: backward reachability from completing finals.  A
    # state outside the coreachable set can never complete, however the
    # remaining choices go.
    predecessors: dict = {node.node_id: [] for node in graph.nodes}
    for src, outs in graph.edges.items():
        for _label, dst in outs:
            predecessors[dst].append(src)
    coreachable = set(final_completed_ids)
    frontier = list(final_completed_ids)
    while frontier:
        current = frontier.pop()
        for pred in predecessors[current]:
            if pred not in coreachable:
                coreachable.add(pred)
                frontier.append(pred)
    doomed = [n.node_id for n in graph.nodes if n.node_id not in coreachable]
    doomed_example = graph.path_to(doomed[0]) if doomed else None

    # AF(final & completed): every schedule finishes the batch.
    # (inevitably() works on database predicates; completion is a
    # process+database property, so run the fixpoint directly here.)
    good = [node.node_id in final_completed_ids for node in graph.nodes]
    changed = True
    while changed:
        changed = False
        for node in graph.nodes:
            i = node.node_id
            if good[i]:
                continue
            succs = graph.successors(i)
            if succs and all(good[s] for s in succs):
                good[i] = True
                changed = True
    always_completes = good[graph.initial]

    return WorkflowReport(
        states=len(graph),
        completable=completable,
        doomed_states=len(doomed),
        doomed_example=doomed_example,
        stuck_states=len(stuck),
        agent_safe=agent_safe,
        agent_violation=agent_violation,
        always_completes=always_completes,
        has_cycles=may_diverge(graph),
    )
