"""Deterministic engine counters on fixed TD programs, per backend.

These values are regression gates: they are pure functions of the
program, the goal, and the search strategy -- never of the clock -- so
any drift means the evaluator's work changed.
"""

import pytest

from repro import (
    Database,
    Interpreter,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)
from repro.core.seqeval import SequentialEngine
from repro.obs import Instrumentation, instrumented
from repro.verify import explore


def counters_for(run):
    """Counters + gauges snapshot after running *run* instrumented."""
    inst = Instrumentation.create()
    with instrumented(inst):
        run()
    return inst


class TestInterpreterCounters:
    def test_tiny_program_exact_counts(self):
        program = parse_program("p <- ins.a.")
        interp = Interpreter(program)
        inst = counters_for(lambda: list(interp.solve(parse_goal("p"), Database())))
        m = inst.metrics
        # call p -> ins.a -> true: two non-final configurations expanded,
        # two budget steps, one head unification, one solution.
        assert m.counter("search.configs_expanded") == 2
        assert m.counter("search.steps") == 2
        assert m.counter("unify.attempts") == 1
        assert m.counter("search.solutions") == 1
        assert m.gauge("budget.spent") == 2
        assert m.gauge("budget.limit") == interp.max_configs

    def test_full_td_counts_are_deterministic(self):
        def run():
            program = parse_program(
                """
                simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
                simulate <- not workitem(_).
                workflow(W) <- ins.done(W).
                """
            )
            db = parse_database("workitem(w1). workitem(w2).")
            engine = select_engine(program, "simulate")
            assert len(list(engine.solve("simulate", db))) == 1

        first = counters_for(run).metrics.snapshot(include_timers=False)
        second = counters_for(run).metrics.snapshot(include_timers=False)
        assert first == second
        # Partial-order reduction serializes the insert-only workflow
        # branches (55 expansions / 109 steps before the reducer);
        # answer tabling big-steps the recursive ``simulate`` calls on
        # top (23 expansions / 25 steps before the table).
        assert first["counters"]["search.configs_expanded"] == 25
        assert first["counters"]["search.steps"] == 22
        assert first["counters"]["por.ample_configs"] == 8
        assert first["counters"]["por.steps_pruned"] == 8
        assert first["counters"]["table.hits"] == 1
        assert first["counters"]["table.misses"] == 4
        assert first["gauges"]["budget.spent"] == 22
        assert first["gauges"]["search.frontier_peak"] == 2
        assert first["info"]["engine.backend"] == "Interpreter"
        assert first["info"]["engine.sublanguage"] == "full TD"

    def test_iso_subsearch_counted_and_traced(self, bank_program, bank_db):
        interp = Interpreter(bank_program)
        inst = counters_for(
            lambda: list(interp.solve(parse_goal("transfer(a, b, 30)"), bank_db))
        )
        assert inst.metrics.counter("iso.searches") >= 1
        assert inst.metrics.gauge("iso.depth_peak") == 1
        names = {s.name for s in inst.tracer.spans}
        assert "iso-subsearch" in names and "solve" in names
        # The isolation search nests under the solve span.
        iso = next(s for s in inst.tracer.spans if s.name == "iso-subsearch")
        solve = next(s for s in inst.tracer.spans if s.name == "solve")
        assert iso.parent_id == solve.span_id

    def test_nested_iso_depth_peak(self):
        program = parse_program(
            """
            outer <- iso(inner * ins.o).
            inner <- iso(ins.i).
            """
        )
        interp = Interpreter(program)
        inst = counters_for(lambda: list(interp.solve(parse_goal("outer"), Database())))
        assert inst.metrics.gauge("iso.depth_peak") == 2

    def test_simulate_counts_dfs_expansions(self, bank_program, bank_db):
        interp = Interpreter(bank_program)
        inst = counters_for(
            lambda: interp.simulate(parse_goal("transfer(a, b, 30)"), bank_db)
        )
        assert inst.metrics.counter("search.configs_expanded") > 0
        assert inst.metrics.gauge("budget.spent") > 0
        assert any(s.name == "simulate" for s in inst.tracer.spans)


class TestSeqevalCounters:
    def test_tabling_hits_misses_exact(self, tc_program, chain_db):
        def run():
            engine = SequentialEngine(tc_program)
            sols = list(engine.solve(parse_goal("path(a, X)"), chain_db))
            assert len(sols) == 3
            return engine

        inst = Instrumentation.create()
        with instrumented(inst):
            engine = run()
        m = inst.metrics
        # One miss per table key registered; the fixpoint then re-derives
        # answers through hits.
        assert m.counter("table.misses") == 4
        assert m.counter("table.hits") == 5
        assert m.counter("table.recomputes") == 7
        assert m.gauge("table.keys") == engine.table_size[0]
        assert m.gauge("table.answers") == engine.table_size[1]
        assert any(s.name == "table-fixpoint" for s in inst.tracer.spans)

    def test_counters_deterministic_across_runs(self, tc_program, chain_db):
        # Fresh program per run: the rulebase memoizes call-shape head
        # matching, so a *reused* program legitimately does less
        # unification work on later runs.  Determinism is over
        # from-scratch runs, which is what the profile gate replays.
        def run():
            engine = SequentialEngine(parse_program(str(tc_program)))
            list(engine.solve(parse_goal("path(X, Y)"), chain_db))

        first = counters_for(run).metrics.snapshot(include_timers=False)
        second = counters_for(run).metrics.snapshot(include_timers=False)
        assert first == second
        assert first["counters"]["table.misses"] > 0
        assert first["counters"]["unify.attempts"] > 0

    def test_program_match_cache_reduces_unify_work(self, tc_program, chain_db):
        # The flip side of the above: reusing one program across runs
        # must *keep the same answers* while skipping head unification.
        def run():
            engine = SequentialEngine(tc_program)
            return [
                s.bindings for s in engine.solve(parse_goal("path(X, Y)"), chain_db)
            ]

        inst1 = Instrumentation.create()
        with instrumented(inst1):
            answers1 = run()
        inst2 = Instrumentation.create()
        with instrumented(inst2):
            answers2 = run()
        assert answers1 == answers2
        assert inst2.metrics.counter("unify.attempts") <= inst1.metrics.counter(
            "unify.attempts"
        )


class TestNonrecCounters:
    def test_memo_misses_exact(self, bank_program, bank_db):
        def run():
            engine = select_engine(bank_program, "transfer(a, b, 30)")
            sols = list(engine.solve("transfer(a, b, 30)", bank_db))
            assert len(sols) == 1
            return engine

        inst = Instrumentation.create()
        with instrumented(inst):
            run()
        m = inst.metrics
        # transfer, withdraw, deposit: one memo miss each, no repeats.
        assert m.counter("table.misses") == 3
        assert m.counter("table.hits") == 0
        assert m.gauge("table.keys") == 3
        assert m.info["engine.backend"] == "NonrecursiveEngine"
        assert m.info["engine.sublanguage"] == "nonrecursive TD"
        assert "time.nonrecursive" in m.timers

    def test_memo_hit_on_repeated_call(self):
        program = parse_program(
            """
            twice <- step * step.
            step <- q(X).
            """
        )
        db = parse_database("q(1).")
        inst = Instrumentation.create()
        with instrumented(inst):
            engine = select_engine(program, "twice")
            list(engine.solve("twice", db))
        assert inst.metrics.counter("table.hits") >= 1


class TestStatespaceCounters:
    def test_explore_records_graph_size(self, bank_program, bank_db):
        inst = Instrumentation.create()
        with instrumented(inst):
            graph = explore(bank_program, "transfer(a, b, 30)", bank_db)
        m = inst.metrics
        assert m.gauge("statespace.states") == len(graph)
        assert m.gauge("statespace.edges") == sum(
            len(v) for v in graph.edges.values()
        )
        assert m.counter("statespace.expanded") > 0
        assert any(s.name == "statespace.explore" for s in inst.tracer.spans)
