"""Live search progress: a periodic stderr heartbeat over the metrics.

Long-running small-step searches look hung from the outside; the
engines' own counters already know better.  :class:`ProgressReporter`
samples the active metrics registry from a daemon thread every
``interval`` seconds and prints one line per sample::

    progress: 12840 steps, 3120 configs, frontier peak 412, depth peak 19, 0 solutions, 4.0s elapsed

Design constraints:

* **Silent by default.**  Nothing starts a reporter unless the user
  asks (``tdlog solve --progress N``); the engines are untouched -- the
  reporter is a pure *reader* of the registry the engines already
  maintain, so enabling it cannot perturb counters or baselines.
* **Zero dependencies.**  ``threading`` + ``time`` only.
* **Robust teardown.**  :meth:`stop` always emits one final line (so a
  short run that finishes inside the first interval still reports), and
  joins the thread with a bounded timeout.

Reading a live registry from another thread is safe here: dict reads of
int/float values under the GIL never see torn state, and a heartbeat
may legitimately be one sample stale.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

from .metrics import Metrics

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Periodic progress heartbeat over a :class:`Metrics` registry."""

    def __init__(
        self,
        metrics: Metrics,
        interval: float = 2.0,
        stream: Optional[TextIO] = None,
        clock=time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive (got %r)" % (interval,))
        self.metrics = metrics
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.lines_emitted = 0

    # -- rendering --------------------------------------------------------------

    def render_line(self) -> str:
        """One heartbeat line from the current counter values."""
        m = self.metrics
        elapsed = (
            self._clock() - self._started_at if self._started_at is not None else 0.0
        )
        parts = [
            "%d steps" % m.counter("search.steps"),
            "%d configs" % m.counter("search.configs_expanded"),
            "frontier peak %d" % m.gauge("search.frontier_peak"),
            "depth peak %d" % m.gauge("search.depth_peak"),
            "%d solutions" % m.counter("search.solutions"),
            "%.1fs elapsed" % elapsed,
        ]
        return "progress: " + ", ".join(parts)

    def _emit(self) -> None:
        print(self.render_line(), file=self.stream, flush=True)
        self.lines_emitted += 1

    # -- lifecycle --------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit()

    def start(self) -> "ProgressReporter":
        if self._thread is not None:
            raise RuntimeError("reporter already started")
        self._started_at = self._clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="tdlog-progress", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the heartbeat and emit one final line."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)
        self._thread = None
        self._emit()

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
