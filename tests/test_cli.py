"""Tests for the tdlog command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def bank_files(tmp_path):
    program = tmp_path / "bank.td"
    program.write_text(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )
    db = tmp_path / "bank.facts"
    db.write_text("balance(a, 100). balance(b, 10).")
    return str(program), str(db)


class TestClassify:
    def test_report_printed(self, bank_files, capsys):
        program, _db = bank_files
        assert main(["classify", program]) == 0
        out = capsys.readouterr().out
        assert "sublanguage:" in out

    def test_goal_flag(self, bank_files, capsys):
        program, _db = bank_files
        assert main(["classify", program, "--goal", "transfer(a, b, 1)"]) == 0


class TestSolve:
    def test_success_prints_solution(self, bank_files, capsys):
        program, db = bank_files
        code = main(["solve", program, "--goal", "transfer(a, b, 30)", "--db", db])
        assert code == 0
        out = capsys.readouterr().out
        assert "balance(a, 70)" in out
        assert "balance(b, 40)" in out

    def test_failure_exit_code(self, bank_files, capsys):
        program, db = bank_files
        code = main(["solve", program, "--goal", "transfer(b, a, 999)", "--db", db])
        assert code == 1
        assert "cannot commit" in capsys.readouterr().out

    def test_bindings_printed(self, tmp_path, capsys):
        program = tmp_path / "q.td"
        program.write_text("pick(X) <- item(X).")
        db = tmp_path / "q.facts"
        db.write_text("item(a). item(b).")
        assert main(["solve", str(program), "--goal", "pick(Y)", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "Y = a" in out and "Y = b" in out

    def test_limit_flag(self, tmp_path, capsys):
        program = tmp_path / "q.td"
        program.write_text("pick(X) <- item(X).")
        db = tmp_path / "q.facts"
        db.write_text("item(a). item(b). item(c).")
        main([
            "solve", str(program), "--goal", "pick(Y)", "--db", str(db),
            "--limit", "1",
        ])
        out = capsys.readouterr().out
        assert out.count("solution") == 1


class TestRun:
    def test_trace_and_final_db(self, bank_files, capsys):
        program, db = bank_files
        code = main(["run", program, "--goal", "transfer(a, b, 30)", "--db", db])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "iso:" in out
        assert "final database:" in out

    def test_no_execution(self, bank_files, capsys):
        program, db = bank_files
        code = main(["run", program, "--goal", "transfer(a, b, 9999)", "--db", db])
        assert code == 1

    def test_seed_flag(self, bank_files):
        program, db = bank_files
        assert main([
            "run", program, "--goal", "transfer(a, b, 1)", "--db", db,
            "--seed", "3",
        ]) == 0

    def test_without_db_file(self, tmp_path):
        program = tmp_path / "p.td"
        program.write_text("go <- ins.done.")
        assert main(["run", str(program), "--goal", "go"]) == 0


class TestGraph:
    def test_stats_printed(self, tmp_path, capsys):
        program = tmp_path / "p.td"
        program.write_text("go <- ins.a.\ngo <- never(x).")
        code = main(["graph", str(program), "--goal", "go"])
        assert code == 0
        out = capsys.readouterr().out
        assert "states:" in out and "stuck:      1" in out

    def test_dot_export(self, tmp_path, capsys):
        program = tmp_path / "p.td"
        program.write_text("go <- ins.a * ins.b.")
        dot = tmp_path / "g.dot"
        assert main(["graph", str(program), "--goal", "go", "--dot", str(dot)]) == 0
        text = dot.read_text()
        assert text.startswith("digraph")
        assert "doublecircle" in text  # the final state

    def test_show_stuck_trace(self, tmp_path, capsys):
        program = tmp_path / "p.td"
        program.write_text("go <- blocked(x) * ins.a.")
        assert main(["graph", str(program), "--goal", "go", "--show-stuck"]) == 0
        out = capsys.readouterr().out
        assert "first stuck state" in out


class TestDiagnose:
    def test_commit_case_exit_zero(self, tmp_path, capsys):
        program = tmp_path / "p.td"
        program.write_text("go <- ins.a.")
        assert main(["diagnose", str(program), "--goal", "go"]) == 0
        assert "can commit" in capsys.readouterr().out

    def test_failure_case_explains(self, tmp_path, capsys):
        program = tmp_path / "p.td"
        program.write_text("go <- permit(W) * ins.a.")
        assert main(["diagnose", str(program), "--goal", "go"]) == 1
        out = capsys.readouterr().out
        assert "cannot commit" in out
        assert "permit" in out


class TestBench:
    def test_table_and_json(self, tmp_path, capsys):
        out = tmp_path / "timings.json"
        code = main([
            "bench", "--only", "bank_transfer", "--repeat", "1",
            "--json", str(out),
        ])
        assert code == 0
        table = capsys.readouterr().out
        assert "bank_transfer" in table
        assert "best (ms)" in table
        rows = json.loads(out.read_text())
        assert rows[0]["config"] == "bank_transfer"
        assert rows[0]["repeat"] == 1
        assert rows[0]["best_ms"] > 0

    def test_out_writes_numbered_snapshots(self, tmp_path, capsys):
        # Each run claims the next free BENCH_<n>.json in the directory,
        # so CI artifacts from successive runs never clobber each other.
        snapdir = tmp_path / "snaps"
        args = ["bench", "--only", "bank_transfer", "--repeat", "1",
                "--out", str(snapdir)]
        assert main(args) == 0
        assert main(args) == 0
        first = json.loads((snapdir / "BENCH_1.json").read_text())
        assert (snapdir / "BENCH_2.json").exists()
        assert first[0]["config"] == "bank_transfer"
        assert first[0]["best_ms"] > 0
        assert "bench snapshot written to" in capsys.readouterr().out

    def test_out_skips_over_foreign_files(self, tmp_path):
        snapdir = tmp_path / "snaps"
        snapdir.mkdir()
        (snapdir / "BENCH_7.json").write_text("[]")
        (snapdir / "notes.txt").write_text("ignored")
        assert main(["bench", "--only", "bank_transfer", "--repeat", "1",
                     "--out", str(snapdir)]) == 0
        assert (snapdir / "BENCH_8.json").exists()

    def test_bad_repeat_rejected(self, capsys):
        assert main(["bench", "--repeat", "0", "--only", "bank_transfer"]) == 2

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            main(["bench", "--only", "not_a_config", "--repeat", "1"])


class TestBenchTrend:
    def test_trend_needs_snapshots(self, tmp_path, capsys):
        assert main(["bench", "trend", "--out", str(tmp_path / "none")]) == 2
        captured = capsys.readouterr()
        assert "no bench trajectory" in captured.out + captured.err

    def test_single_snapshot_lists_latest(self, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        base = ["bench", "--only", "bank_transfer", "--repeat", "1",
                "--out", str(snapdir)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(["bench", "trend", "--out", str(snapdir)]) == 0
        out = capsys.readouterr().out
        assert "1 snapshot(s)" in out
        assert "bank_transfer" in out

    def test_trend_compares_latest_against_series(self, tmp_path, capsys):
        snapdir = tmp_path / "snaps"
        base = ["bench", "--only", "bank_transfer", "--repeat", "1",
                "--out", str(snapdir)]
        assert main(base) == 0
        assert main(base) == 0
        capsys.readouterr()
        assert main(["bench", "trend", "--out", str(snapdir)]) == 0
        out = capsys.readouterr().out
        assert "latest BENCH_2" in out
        assert "bank_transfer" in out
        assert "%" in out  # delta column against the series best

    def test_committed_trajectory_parses(self):
        # The repo ships its own trajectory; trend must accept it.
        assert main(["bench", "trend"]) == 0


class TestExplainCli:
    def test_proof_tree_printed(self, bank_files, capsys):
        program, db = bank_files
        code = main(["explain", program, "--goal", "transfer(a, b, 30)",
                     "--db", db])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 solution(s); proof tree:" in out
        assert "+balance(a, 70)" in out

    def test_why_not_on_failure(self, bank_files, capsys):
        program, db = bank_files
        code = main(["explain", program, "--goal", "transfer(b, a, 999)",
                     "--db", db])
        assert code == 1
        out = capsys.readouterr().out
        assert "dispositions:" in out

    def test_why_not_flag_on_success(self, bank_files, capsys):
        program, db = bank_files
        code = main(["explain", program, "--goal", "transfer(a, b, 30)",
                     "--db", db, "--why-not"])
        assert code == 0
        assert "solution(s) exist" in capsys.readouterr().out

    def test_json_and_dot_outputs(self, bank_files, tmp_path, capsys):
        program, db = bank_files
        prov = tmp_path / "prov.jsonl"
        dot = tmp_path / "prov.dot"
        code = main(["explain", program, "--goal", "transfer(a, b, 30)",
                     "--db", db, "--json", str(prov), "--dot", str(dot)])
        assert code == 0
        from repro.obs import ProvenanceRecorder

        reloaded = ProvenanceRecorder.from_jsonl(prov.read_text())
        assert reloaded.solutions()
        assert dot.read_text().startswith("digraph provenance {")

    def test_mode_flag(self, bank_files, capsys):
        program, db = bank_files
        code = main(["explain", program, "--goal", "transfer(a, b, 30)",
                     "--db", db, "--mode", "dfs"])
        assert code == 0
        assert "proof tree:" in capsys.readouterr().out

    def test_requires_program_and_goal(self, capsys):
        assert main(["explain"]) == 2

    def test_audit_suite(self, capsys):
        code = main(["explain", "--audit-por", "--suite", "bank_transfer"])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit bank_transfer" in out and "OK" in out

    def test_audit_goal(self, bank_files, capsys):
        program, db = bank_files
        code = main(["explain", program, "--goal", "transfer(a, b, 30)",
                     "--db", db, "--audit-por"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out and "1 reduced vs 1 unreduced" in out
