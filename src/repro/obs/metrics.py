"""Metric registry: counters, gauges, histograms, and timers.

Design constraints (see docs/OBSERVABILITY.md):

* **Deterministic where it matters.**  Counters, gauges and histograms
  are pure functions of the executed search, never of the clock, so
  tests can assert exact values.  Wall-clock accumulation lives in a
  separate ``timers`` table that reports exclude from determinism
  guarantees.
* **Cheap.**  ``inc`` is a dict ``get``/store; the engines additionally
  guard every call behind a single ``enabled`` check so the
  uninstrumented path pays one attribute load.
* **Zero dependencies.**  Plain dicts, stdlib only.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Metrics", "HistogramSummary"]


#: Maximum retained observations per histogram.  Beyond this the
#: reservoir decimates deterministically (keep every other sample,
#: double the stride), so memory stays bounded while quantiles remain a
#: pure function of the observation sequence -- no RNG involved.
RESERVOIR_CAP = 512


class HistogramSummary:
    """Streaming summary of observed values: count / total / min / max,
    plus a bounded *deterministic* reservoir for quantile estimates.

    The reservoir keeps every ``stride``-th observation (stride starts at
    1); when it fills past :data:`RESERVOIR_CAP` it drops every other
    retained sample and doubles the stride.  Identical observation
    sequences therefore always yield identical percentiles -- the same
    determinism contract as the counters (see docs/OBSERVABILITY.md).
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_stride")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > RESERVOIR_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate over the retained reservoir.

        *q* is in [0, 100].  Exact while ``count <= RESERVOIR_CAP``;
        afterwards an estimate over the strided sample.  Returns 0.0 for
        an empty histogram (mirroring ``min``/``max`` in ``as_dict``).
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, int(q / 100.0 * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HistogramSummary(%s)" % self.as_dict()


class Metrics:
    """A named registry of counters, gauges, histograms, info and timers.

    ``counters``
        Monotonically increasing event counts (``inc``).
    ``gauges``
        High-water marks (``gauge_max``) or last-set values
        (``set_gauge``) -- e.g. frontier peak size, budget spent.
    ``histograms``
        Value distributions (``observe``) -- e.g. answers per table key.
    ``info``
        Small string facts (``set_info``) -- engine chosen, sublanguage.
    ``timers``
        Accumulated wall-clock seconds (``add_time`` / ``timer``).
        Deliberately segregated: everything *except* timers is
        deterministic for a fixed program and goal.
    """

    __slots__ = ("counters", "gauges", "histograms", "info", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}
        self.info: Dict[str, str] = {}
        self.timers: Dict[str, float] = {}

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if larger (high-water mark)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* unconditionally."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def set_info(self, name: str, value: str) -> None:
        """Record a string fact (engine name, sublanguage, ...)."""
        self.info[name] = str(value)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* into timer *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block of code into timer *name* (accumulating)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- reading --------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> float:
        """Current value of gauge *name* (0 if never set)."""
        return self.gauges.get(name, 0.0)

    def snapshot(self, include_timers: bool = True) -> Dict[str, object]:
        """A plain-dict copy, suitable for JSON serialization.

        With ``include_timers=False`` the snapshot is fully
        deterministic for a fixed search.
        """
        out: Dict[str, object] = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: v.as_dict() for k, v in self.histograms.items()},
            "info": dict(self.info),
        }
        if include_timers:
            out["timers"] = dict(self.timers)
        return out

    def merge(self, other: "Metrics") -> None:
        """Fold *other* into this registry (counters add, gauges max)."""
        for name, n in other.counters.items():
            self.inc(name, n)
        for name, v in other.gauges.items():
            self.gauge_max(name, v)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramSummary()
            mine.count += hist.count
            mine.total += hist.total
            mine._samples.extend(hist._samples)
            mine._stride = max(mine._stride, hist._stride)
            while len(mine._samples) > RESERVOIR_CAP:
                mine._samples = mine._samples[::2]
                mine._stride *= 2
            for bound in ("min", "max"):
                theirs = getattr(hist, bound)
                if theirs is not None:
                    ours = getattr(mine, bound)
                    pick = min if bound == "min" else max
                    setattr(
                        mine, bound, theirs if ours is None else pick(ours, theirs)
                    )
        self.info.update(other.info)
        for name, seconds in other.timers.items():
            self.add_time(name, seconds)

    def reset(self) -> None:
        """Drop every recorded value (reuse one registry across runs)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.info.clear()
        self.timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Metrics(counters=%d, gauges=%d, timers=%d)" % (
            len(self.counters),
            len(self.gauges),
            len(self.timers),
        )
