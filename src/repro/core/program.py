"""Rules and rulebases (TD programs).

A TD program (the paper says *rulebase*) is a finite set of rules

    head <- body

where ``head`` is an atom over a *derived* predicate and ``body`` is a TD
formula.  Predicates split into two disjoint classes, exactly as in the
paper:

* *base* predicates -- stored in the database; accessed only through the
  elementary operations (tuple testing, ``ins``, ``del``);
* *derived* predicates -- defined by rules; invoking one unfolds its
  rules (nondeterministically, when several rules match).

The parser emits every body atom as a generic :class:`~repro.core.formulas.Call`;
:meth:`Program.resolve` rewrites calls to base predicates into
:class:`~repro.core.formulas.Test` once the base/derived split is known.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .database import Schema
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
    apply_subst,
    formula_variables,
    walk_formulas,
)
from .terms import Atom, Signature, Variable
from .unify import Substitution

__all__ = ["Rule", "Program", "ProgramError"]


class ProgramError(ValueError):
    """Raised for ill-formed rulebases (e.g. updating a derived predicate)."""


@dataclass(frozen=True)
class Rule:
    """A single TD rule ``head <- body``."""

    head: Atom
    body: Formula

    def variables(self) -> Set[Variable]:
        out = set(self.head.variables())
        out.update(formula_variables(self.body))
        return out

    def rename(self, suffix: str) -> "Rule":
        """Freshen every variable by appending *suffix*."""
        renaming = {v: Variable(v.name + suffix) for v in self.variables()}
        new_head = Atom(
            self.head.pred,
            tuple(renaming.get(t, t) if isinstance(t, Variable) else t for t in self.head.args),
        )
        return Rule(new_head, apply_subst(self.body, renaming))

    def __str__(self) -> str:
        if isinstance(self.body, Truth):
            return "%s." % (self.head,)
        return "%s <- %s." % (self.head, self.body)


class Program:
    """A TD rulebase together with its base-predicate schema.

    Parameters
    ----------
    rules:
        The rules.  Body atoms may still be unresolved generic calls; the
        constructor resolves them (base-predicate calls become tests).
    base:
        Extra base-predicate signatures to declare beyond those inferred
        from ``ins``/``del``/``not`` occurrences.
    strict:
        If true (default), using an undeclared predicate that is neither
        a rule head nor inferable as base raises; if false, such
        predicates are treated as base on first use.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        base: Iterable[Signature] = (),
        strict: bool = False,
    ):
        self._rules: List[Rule] = list(rules)
        self._derived: Dict[Signature, List[Rule]] = {}
        for rule in self._rules:
            self._derived.setdefault(rule.head.signature, []).append(rule)

        self.schema = Schema(base, strict=False)
        self._infer_base_predicates()
        self.strict = strict
        self._rules = [self._resolve_rule(r) for r in self._rules]
        self._derived = {}
        for rule in self._rules:
            self._derived.setdefault(rule.head.signature, []).append(rule)
        self._fresh_counter = itertools.count(1)
        self._validate()

    # -- construction internals ------------------------------------------------

    def _infer_base_predicates(self) -> None:
        for rule in self._rules:
            for sub in walk_formulas(rule.body):
                if isinstance(sub, (Ins, Del, Neg)):
                    self.schema.declare(sub.atom.pred, sub.atom.arity)
                elif isinstance(sub, Test):
                    self.schema.declare(sub.atom.pred, sub.atom.arity)

    def is_derived(self, sig: Signature) -> bool:
        return sig in self._derived

    def is_base(self, sig: Signature) -> bool:
        return sig in self.schema and not self.is_derived(sig)

    def _resolve_formula(self, f: Formula) -> Formula:
        if isinstance(f, Call):
            sig = f.atom.signature
            if self.is_derived(sig):
                return f
            # Not a rule head: it is a tuple test on a base predicate.
            if sig not in self.schema:
                if self.strict:
                    raise ProgramError(
                        "predicate %s/%d is neither defined by rules nor "
                        "declared as a base predicate" % sig
                    )
                self.schema.declare(*sig)
            return Test(f.atom)
        if isinstance(f, Seq):
            return Seq(tuple(self._resolve_formula(p) for p in f.parts))
        if isinstance(f, Conc):
            return Conc(tuple(self._resolve_formula(p) for p in f.parts))
        if isinstance(f, Isol):
            return Isol(self._resolve_formula(f.body))
        return f

    def _resolve_rule(self, rule: Rule) -> Rule:
        return Rule(rule.head, self._resolve_formula(rule.body))

    def _validate(self) -> None:
        for rule in self._rules:
            if (
                rule.head.signature in self.schema
                and not self.is_derived(rule.head.signature)
            ):
                raise ProgramError(
                    "predicate %s/%d is both base and derived"
                    % rule.head.signature
                )
            for sub in walk_formulas(rule.body):
                if isinstance(sub, (Ins, Del)) and self.is_derived(sub.atom.signature):
                    raise ProgramError(
                        "cannot update derived predicate %s/%d"
                        % sub.atom.signature
                    )
                if isinstance(sub, Test) and self.is_derived(sub.atom.signature):
                    raise ProgramError(
                        "internal error: derived predicate %s/%d resolved "
                        "as a tuple test" % sub.atom.signature
                    )

    # -- public API ---------------------------------------------------------------

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def derived_signatures(self) -> Tuple[Signature, ...]:
        return tuple(sorted(self._derived))

    def rules_for(self, sig: Signature) -> Sequence[Rule]:
        """Rules whose head matches *sig*, in program order."""
        return self._derived.get(sig, ())

    def fresh_rules_for(self, sig: Signature) -> Iterator[Rule]:
        """Rules for *sig*, each with variables freshly renamed."""
        for rule in self._derived.get(sig, ()):
            yield rule.rename("#%d" % next(self._fresh_counter))

    def resolve_goal(self, goal: Formula) -> Formula:
        """Resolve generic calls in a parsed goal against this program."""
        return self._resolve_formula(goal)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """A new program with extra rules (programs are immutable)."""
        return Program(
            list(self._rules) + list(rules),
            base=self.schema.signatures(),
            strict=self.strict,
        )

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)
