"""Unit tests for the formula AST."""

import pytest

from repro.core.formulas import (
    BinOp,
    Builtin,
    Call,
    Conc,
    Del,
    Ins,
    Isol,
    Neg,
    Seq,
    TRUTH,
    Test,
    Truth,
    apply_subst,
    conc,
    formula_variables,
    iso,
    seq,
    walk_formulas,
)
from repro.core.terms import Atom, Constant, Variable, atom

X, Y = Variable("X"), Variable("Y")
a = Constant("a")


class TestConstructors:
    def test_seq_flattens(self):
        f = seq(Test(atom("p")), seq(Test(atom("q")), Test(atom("r"))))
        assert isinstance(f, Seq)
        assert len(f.parts) == 3

    def test_conc_flattens(self):
        f = conc(Test(atom("p")), conc(Test(atom("q")), Test(atom("r"))))
        assert isinstance(f, Conc)
        assert len(f.parts) == 3

    def test_units_dropped(self):
        f = seq(TRUTH, Test(atom("p")), TRUTH)
        assert f == Test(atom("p"))

    def test_empty_is_truth(self):
        assert seq() == TRUTH
        assert conc() == TRUTH

    def test_singleton_unwrapped(self):
        t = Test(atom("p"))
        assert seq(t) is t
        assert conc(t) is t

    def test_iso_of_truth_is_truth(self):
        assert iso(TRUTH) == TRUTH
        assert isinstance(iso(Test(atom("p"))), Isol)

    def test_associativity_as_equality(self):
        p, q, r = (Test(atom(n)) for n in "pqr")
        assert seq(seq(p, q), r) == seq(p, seq(q, r))
        assert conc(conc(p, q), r) == conc(p, conc(q, r))


class TestApplySubst:
    def test_applies_through_tree(self):
        f = seq(Test(Atom("p", (X,))), Ins(Atom("q", (X,))))
        g = apply_subst(f, {X: a})
        assert g == seq(Test(atom("p", "a")), Ins(atom("q", "a")))

    def test_empty_subst_identity(self):
        f = conc(Test(Atom("p", (X,))), Del(Atom("q", (Y,))))
        assert apply_subst(f, {}) is f

    def test_applies_inside_iso_and_builtin(self):
        f = Isol(Builtin(">", X, Constant(0)))
        g = apply_subst(f, {X: Constant(5)})
        assert g == Isol(Builtin(">", Constant(5), Constant(0)))

    def test_applies_inside_binop(self):
        f = Builtin("is", Y, BinOp("+", X, Constant(1)))
        g = apply_subst(f, {X: Constant(2)})
        assert g.right == BinOp("+", Constant(2), Constant(1))


class TestBuiltinEvaluate:
    def test_comparisons(self):
        assert Builtin(">", Constant(3), Constant(2)).evaluate({}) == {}
        assert Builtin(">", Constant(2), Constant(3)).evaluate({}) is None
        assert Builtin("=", Constant("a"), Constant("a")).evaluate({}) == {}
        assert Builtin("!=", Constant("a"), Constant("b")).evaluate({}) == {}
        assert Builtin("<=", Constant(2), Constant(2)).evaluate({}) == {}

    def test_is_binds_left(self):
        out = Builtin("is", X, BinOp("-", Constant(5), Constant(2))).evaluate({})
        assert out == {X: Constant(3)}

    def test_is_checks_bound_left(self):
        f = Builtin("is", X, Constant(3))
        assert f.evaluate({X: Constant(3)}) == {X: Constant(3)}
        assert f.evaluate({X: Constant(4)}) is None

    def test_unbound_comparison_raises(self):
        with pytest.raises(ValueError):
            Builtin(">", X, Constant(0)).evaluate({})

    def test_arithmetic_on_strings_raises(self):
        with pytest.raises(ValueError):
            Builtin("is", X, BinOp("+", Constant("a"), Constant(1))).evaluate({})

    def test_multiplication_binop(self):
        out = Builtin("is", X, BinOp("*", Constant(4), Constant(3))).evaluate({})
        assert out == {X: Constant(12)}

    def test_comparison_over_expressions(self):
        f = Builtin("<", BinOp("+", Constant(1), Constant(1)), Constant(3))
        assert f.evaluate({}) == {}


class TestTraversals:
    def test_formula_variables_in_order(self):
        f = seq(Test(Atom("p", (X,))), Conc((Ins(Atom("q", (Y,))), Test(Atom("r", (X,))))))
        assert list(formula_variables(f)) == [X, Y, X]

    def test_variables_in_builtins(self):
        f = Builtin("is", Y, BinOp("+", X, Constant(1)))
        assert list(formula_variables(f)) == [Y, X]

    def test_walk_formulas_preorder(self):
        inner = Test(atom("p"))
        f = Isol(seq(inner, Ins(atom("q"))))
        kinds = [type(x).__name__ for x in walk_formulas(f)]
        assert kinds == ["Isol", "Seq", "Test", "Ins"]


class TestStr:
    def test_round_trip_shapes(self):
        f = seq(
            Test(Atom("p", (X,))),
            conc(Ins(atom("q", "a")), Del(atom("r", "b"))),
            Neg(atom("s")),
        )
        text = str(f)
        assert "p(X)" in text
        assert "ins.q(a)" in text
        assert "del.r(b)" in text
        assert "not s" in text
        # concurrent group parenthesized inside the sequence
        assert "(ins.q(a) | del.r(b))" in text
