#!/usr/bin/env python3
"""A guided tour of the paper's complexity map (Sections 4-5).

Walks through the sublanguage classifier and the machine encodings:

* query-only TD is classical Datalog;
* nonrecursive TD decides quickly;
* sequential TD is decidable but can be exponential (binary counter);
* full TD runs Turing machines -- watch a two-counter machine execute
  as three concurrent processes with a constant-size database, and a
  diverging one exhaust the semi-decision budget;
* fully bounded TD keeps workflows decidable.

Run:  python examples/complexity_tour.py
"""

from repro import (
    Database,
    Interpreter,
    SearchBudgetExceeded,
    analyze,
    parse_database,
    parse_goal,
    parse_program,
    select_engine,
)
from repro.complexity import binary_counter_family, diverging_counter_machine
from repro.machines import counter_to_td
from repro.machines.counter import parity_program


def banner(title):
    print("\n" + "=" * 64)
    print(title)
    print("=" * 64)


def main() -> None:
    banner("1. The classifier: one program per sublanguage")
    samples = {
        "query-only (Datalog)": "path(X,Y) <- e(X,Y).\npath(X,Y) <- e(X,Z) * path(Z,Y).",
        "nonrecursive": "audit <- done(T, W, A) * ins.credit(A).",
        "fully bounded": "drain <- item(X) * del.item(X) * drain.\ndrain <- not item(_).",
        "sequential (non-tail)": "p <- ins.down * p * ins.up.\np <- stop.",
        "full TD": "sim <- w(X) * del.w(X) * (go(X) | sim).\nsim <- not w(_).\ngo(X) <- ins.done(X).",
    }
    for label, text in samples.items():
        sub = analyze(parse_program(text)).classify()
        print("  %-24s -> %s" % (label, sub.value))

    banner("2. Sequential TD: decidable, but exponential (binary counter)")
    for bits in (2, 4, 6):
        program, goal, db = binary_counter_family(bits)
        interp = Interpreter(program, max_configs=20_000_000)
        execution = interp.simulate(goal, db)
        print(
            "  %d bits -> %5d execution steps (2^%d = %d states)"
            % (bits, len(execution.trace), bits, 2**bits)
        )

    banner("3. Full TD: a two-counter machine as three TD processes")
    machine = parity_program()
    for n in (2, 3):
        program, goal, db = counter_to_td(machine, c0=n)
        interp = Interpreter(program, max_configs=5_000_000)
        verdict = interp.succeeds(goal, db)
        print(
            "  parity(%d): machine says %-5s TD says %-5s (|db| stays %d)"
            % (n, machine.accepts(c0=n), verdict, len(db))
        )

    banner("4. The RE boundary: divergence is only a budget, never a 'no'")
    # por=False: show the naive enumeration, which cannot distinguish
    # divergence from slow acceptance.  (The partial-order reducer
    # happens to prove *this* machine commit-free in a handful of
    # configurations -- sound, but it would spoil the demonstration.)
    program, goal, db = counter_to_td(diverging_counter_machine())
    interp = Interpreter(program, max_configs=5_000, por=False)
    try:
        interp.succeeds(goal, db)
        print("  unexpected: the diverging machine halted?!")
    except SearchBudgetExceeded as exc:
        print("  %s" % exc)
    reduced = Interpreter(program, max_configs=5_000)
    print(
        "  (partial-order reduction decides this instance: succeeds=%s)"
        % reduced.succeeds(goal, db)
    )

    banner("4b. Alternation: QBF through sequential TD")
    from repro.machines import QBF, evaluate_qbf, qbf_to_td

    formulas = {
        "forall x exists y. (x|y)(~x|~y)": QBF(
            (("forall", "x"), ("exists", "y")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        ),
        "exists y forall x. (x|y)(~x|~y)": QBF(
            (("exists", "y"), ("forall", "x")),
            ((("x", True), ("y", True)), (("x", False), ("y", False))),
        ),
    }
    for label, formula in formulas.items():
        program, goal, db = qbf_to_td(formula)
        interp = Interpreter(program, max_configs=5_000_000)
        print(
            "  %-36s native=%-5s TD=%s"
            % (label, evaluate_qbf(formula), interp.succeeds(goal, db))
        )

    banner("5. Fully bounded TD: refutation terminates")
    program = parse_program(
        "drain <- item(X) * del.item(X) * need(X) * drain."
        "\ndrain <- not item(_)."
        "\nneed(X) <- token(X) * del.token(X)."
    )
    engine = select_engine(program)
    db = parse_database("item(a). item(b).")
    print("  engine decidable:", engine.decidable)
    print("  drain without tokens commits:", engine.succeeds("drain", db))
    db2 = parse_database("item(a). item(b). token(a). token(b).")
    print("  drain with tokens commits:   ", engine.succeeds("drain", db2))


if __name__ == "__main__":
    main()
