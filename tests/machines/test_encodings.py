"""Tests for the TD encodings of machines -- the constructions behind the
paper's RE-completeness results.

These are the repository's deepest integration tests: a machine's native
run and its TD encoding (three concurrent processes, counters/stacks in
recursion depth) must agree on acceptance, and the database must stay
constant-size while the computation grows.
"""

import pytest

from repro import Interpreter, Sublanguage, classify
from repro.machines import (
    CounterMachine,
    Dec,
    Halt,
    Inc,
    counter_to_td,
    tm_to_two_stack,
    two_stack_to_td,
)
from repro.machines.counter import parity_program, transfer_program
from repro.machines.turing import BLANK, TuringMachine


class TestCounterEncoding:
    @pytest.mark.parametrize("n,expected", [(0, True), (1, False), (2, True), (3, False)])
    def test_parity_agreement(self, n, expected):
        machine = parity_program()
        program, goal, db = counter_to_td(machine, c0=n)
        interp = Interpreter(program, max_configs=2_000_000)
        assert interp.succeeds(goal, db) == expected
        assert machine.accepts(c0=n) == expected

    def test_transfer_accepts(self):
        program, goal, db = counter_to_td(transfer_program(), c0=3)
        assert Interpreter(program, max_configs=2_000_000).succeeds(goal, db)

    def test_rejecting_halt_fails(self):
        always_reject = CounterMachine((Halt(accept=False),))
        program, goal, db = counter_to_td(always_reject)
        assert not Interpreter(program, max_configs=100_000).succeeds(goal, db)

    def test_classified_as_full_td(self):
        program, goal, _db = counter_to_td(parity_program(), c0=1)
        assert classify(program, goal) is Sublanguage.FULL

    def test_database_stays_small(self):
        # The crux of the fixed-schema RE argument: the database holds
        # only seeds + a bounded set of flags, never the counter values.
        machine = transfer_program()
        program, goal, db = counter_to_td(machine, c0=4)
        interp = Interpreter(program, max_configs=2_000_000)
        exe = interp.simulate(goal, db)
        assert exe is not None
        # trace length grows with the computation...
        assert len(exe.trace) > 40
        # ...but no intermediate insert ever targets a counter-valued
        # relation: final db is a constant-size residue.
        assert len(exe.database) <= len(db) + 3

    def test_step_count_scales_with_input(self):
        machine = transfer_program()
        lengths = []
        for n in (1, 3, 5):
            program, goal, db = counter_to_td(machine, c0=n)
            exe = Interpreter(program, max_configs=2_000_000).simulate(goal, db)
            lengths.append(len(exe.trace))
        assert lengths[0] < lengths[1] < lengths[2]


class TestTwoStackEncoding:
    def _scan_machine(self):
        tm = TuringMachine(
            states=frozenset({"q0", "qa"}),
            input_alphabet=frozenset({"a"}),
            tape_alphabet=frozenset({"a", BLANK}),
            transitions={
                ("q0", "a"): [("q0", "a", "R")],
                ("q0", BLANK): [("qa", BLANK, "R")],
            },
            start="q0",
            accepting=frozenset({"qa"}),
        )
        return tm, tm_to_two_stack(tm)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tm_twostack_td_triple_agreement(self, n):
        word = ["a"] * n
        tm, tsm = self._scan_machine()
        program, goal, db = two_stack_to_td(tsm, word)
        interp = Interpreter(program, max_configs=4_000_000)
        td_accepts = interp.succeeds(goal, db)
        assert tm.accepts(word) == tsm.accepts(word) == td_accepts is True

    def test_three_concurrent_processes(self):
        # Corollary 4.6's shape: the goal is exactly stack1|stack2|boot.
        from repro.core.formulas import Conc

        _tm, tsm = self._scan_machine()
        _program, goal, _db = two_stack_to_td(tsm, ["a"])
        assert isinstance(goal, Conc)
        assert len(goal.parts) == 3

    def test_parity_machine_reject(self):
        tm = TuringMachine(
            states=frozenset({"even", "odd", "acc"}),
            input_alphabet=frozenset({"a"}),
            tape_alphabet=frozenset({"a", BLANK}),
            transitions={
                ("even", "a"): [("odd", "a", "R")],
                ("odd", "a"): [("even", "a", "R")],
                ("even", BLANK): [("acc", BLANK, "R")],
            },
            start="even",
            accepting=frozenset({"acc"}),
        )
        tsm = tm_to_two_stack(tm)
        program, goal, db = two_stack_to_td(tsm, ["a"])
        assert not Interpreter(program, max_configs=1_000_000).succeeds(goal, db)
        program, goal, db = two_stack_to_td(tsm, ["a", "a"])
        assert Interpreter(program, max_configs=4_000_000).succeeds(goal, db)
