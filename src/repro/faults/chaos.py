"""Differential chaos testing: many seeded fault plans, one invariant.

The headline robustness property of the reproduction (and of the
paper's semantics): **no committed state ever contains partial effects
of an ``iso(...)`` block**, no matter what goes wrong around it --
rollback leaves no trace, isolation commits whole or not at all.  The
chaos harness checks it differentially: run each workload under many
:func:`~repro.faults.plan.generate_plan` seeds and assert, for every
committed execution,

1. the **replay certificate** -- re-applying the execution's trace to
   the initial database reproduces its final database exactly (the
   trace accounts for every state change, so nothing leaked in
   half-applied), and
2. the **workload invariant** -- an application-level all-or-nothing
   statement (bank balances conserved, every lab sample either fully
   processed or distinctly aborted, ...), checked on the final state
   with the recovery combinators' bookkeeping tokens stripped.

A fault plan that prevents commit is fine -- TD reports failure by not
committing.  But when a plan is *transient* (every window closes, no
forced exhaustion) the second headline property kicks in: wrapping the
same goal in ``retry(goal, horizon + 3)`` must commit, because each
failed isolated attempt advances the injector's tick, so some attempt
runs entirely after the faults expire.  A transient plan whose
retry-wrapped run still fails is reported as a violation.

Everything here is deterministic: plans come from seeds, the injector
holds no RNG, and reports contain no wall-clock numbers -- ``tdlog
chaos --seed S`` is byte-identical across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .inject import FaultInjector
from .plan import FaultPlan, generate_plan
from .recovery import _RECOVERY_PRED, retry

__all__ = [
    "ChaosWorkload",
    "PlanOutcome",
    "ChaosReport",
    "chaos_workloads",
    "store_workloads",
    "workload_by_name",
    "run_one_plan",
    "run_chaos",
    "format_report",
]


# -- workload catalogue -------------------------------------------------------
#
# Engine and workflow imports stay inside the runners: ``repro.workflow``
# and ``repro.lims`` import this package lazily, and keeping the heavy
# imports out of module load keeps ``import repro.faults`` cheap.

_BANK_TD = """
transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
withdraw(Acct, Amt) <-
    balance(Acct, Bal) * Bal >= Amt *
    del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
deposit(Acct, Amt) <-
    balance(Acct, Bal) *
    del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
"""

_BANK_DB = "balance(a, 100). balance(b, 10)."

_PATH_TD = """
path(X, Y) <- e(X, Y).
path(X, Y) <- e(X, Z) * path(Z, Y).
"""

_PATH_DB = "e(a, b). e(b, c). e(c, d). e(d, e). e(e, f)."

# The profile suite's genome lab (Examples 3.1-3.3), and an iso-hardened
# variant where each workflow instance is one atomic transition -- the
# injector can veto a whole instance commit but never tear one.
_GENOME_TD = """
simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate).
simulate <- not workitem(_).
workflow(W) <- prep(W) * (load_gel(W) | label(W)) * read_gel(W).
prep(W) <-
    available(A) * qualified(A, tech) * del.available(A) *
    ins.done(prep, W, A) * ins.available(A).
load_gel(W) <-
    available(A) * qualified(A, tech) * del.available(A) *
    ins.done(load_gel, W, A) * ins.available(A).
label(W) <- ins.done(label, W, auto).
read_gel(W) <-
    available(A) * qualified(A, reader) * del.available(A) *
    ins.done(read_gel, W, A) * ins.available(A).
"""

_GENOME_ISO_TD = _GENOME_TD.replace(
    "(workflow(W) | simulate)", "(iso(workflow(W)) | simulate)"
)

_GENOME_DB = """
workitem(dna01). workitem(dna02).
available(ana). available(raj).
qualified(ana, tech). qualified(raj, tech). qualified(raj, reader).
"""

_GENOME_ITEMS = ("dna01", "dna02")
_GENOME_AGENTS = ("ana", "raj")

#: Per-attempt search cap for retry-wrapped recovery runs (``iso[k]``),
#: in budget units (enabled steps, like ``max_configs``).  The isolated
#: attempt searches breadth-first, so even its *first* successful
#: execution costs roughly the full breadth of the workload's
#: interleaving space up to solution depth (~175k steps for the
#: two-item genome simulation); the cap sits above that so a clean
#: attempt commits, while a genuinely wedged attempt still fails at the
#: cap (and rolls back) instead of eating the whole search budget.
_ATTEMPT_BUDGET = 250_000


@dataclass(frozen=True)
class ChaosWorkload:
    """One workload the chaos suite perturbs.

    ``runner(plan, retry_attempts)`` executes the workload under the
    plan (``retry_attempts == 0`` means no recovery wrapper) and
    returns ``(committed, violation)``; a committed run has already
    been checked against the replay certificate and the workload
    invariant, so ``violation`` is ``None`` unless atomicity broke.
    ``predicates``/``agents`` parameterize plan generation so faults
    actually hit the workload's own update steps.
    """

    name: str
    description: str
    predicates: Tuple[str, ...]
    agents: Tuple[str, ...]
    runner: Callable[[FaultPlan, int], Tuple[bool, Optional[str]]]


def _strip_recovery(db):
    """The database minus recovery-combinator bookkeeping (attempt
    tokens): the state the *application* invariant is about."""
    from ..core.database import Database

    return Database(
        fact for fact in db if not _RECOVERY_PRED.match(fact.pred)
    )


def _check_committed(execution, initial_db, invariant) -> Optional[str]:
    from ..core.transitions import replay_actions

    replayed = replay_actions(execution.trace, initial_db)
    if set(replayed) != set(execution.database):
        return "replay certificate failed: trace does not account for final state"
    return invariant(_strip_recovery(execution.database))


def _run_td(
    program_text: str,
    goal_text: str,
    db_text: str,
    invariant,
    plan: FaultPlan,
    retry_attempts: int,
    max_configs: int = 600_000,
) -> Tuple[bool, Optional[str]]:
    from ..core.errors import ReproError
    from ..core.interpreter import Interpreter
    from ..core.parser import parse_database, parse_goal, parse_program

    program = parse_program(program_text)
    db = parse_database(db_text)
    goal = parse_goal(goal_text)
    if retry_attempts:
        # Cap each isolated attempt: an attempt that wanders a large
        # faulted search space fails at the cap (and rolls back) instead
        # of eating the whole budget, and the wandering itself advances
        # the injector past every window -- so the next attempt is clean.
        recovered = retry(goal, retry_attempts, budget=_ATTEMPT_BUDGET)
        program, db = recovered.install(program, db)
        goal = recovered.goal
    interp = Interpreter(
        program, max_configs=max_configs, faults=FaultInjector(plan)
    )
    try:
        execution = interp.simulate(goal, db)
    except ReproError:
        return False, None
    if execution is None:
        return False, None
    return True, _check_committed(execution, db, invariant)


# -- invariants ---------------------------------------------------------------


def _bank_invariant(db) -> Optional[str]:
    balances = list(db.facts("balance"))
    total = sum(int(str(f.args[1])) for f in balances)
    if len(balances) != 2 or total != 110:
        return (
            "bank atomicity violated: balances %s (sum %d, want 2 facts "
            "summing 110)" % (sorted(map(str, balances)), total)
        )
    return None


def _path_invariant(db) -> Optional[str]:
    reachable = {"b", "c", "d", "e", "f"}
    for fact in db.facts("reached"):
        if str(fact.args[0]) not in reachable:
            return "reached(%s) recorded for an unreachable node" % fact.args[0]
    return None


def _genome_invariant(db) -> Optional[str]:
    if list(db.facts("workitem")):
        return "committed with unprocessed work items still queued"
    done = {(str(f.args[0]), str(f.args[1])) for f in db.facts("done")}
    for item in _GENOME_ITEMS:
        whole = (
            ("prep", item) in done
            and ("read_gel", item) in done
            and (("load_gel", item) in done or ("label", item) in done)
        )
        untouched = not any(i == item for _, i in done)
        if not whole and not untouched:
            return "sample %s partially processed: %s" % (
                item,
                sorted(t for t, i in done if i == item),
            )
    available = {str(f.args[0]) for f in db.facts("available")}
    if not set(_GENOME_AGENTS) <= available:
        return "agents not restored: available=%s" % sorted(available)
    return None


# -- workflow-simulator workloads ---------------------------------------------


def _lab_invariant(items, agents):
    def invariant(db) -> Optional[str]:
        done = {(str(f.args[0]), str(f.args[1])) for f in db.facts("done")}
        aborted = {(str(f.args[0]), str(f.args[1])) for f in db.facts("aborted")}
        for item in items:
            touched = any(i == item for _, i in done | aborted)
            if not touched:
                return "work item %s vanished without any recorded attempt" % item
        available = {str(f.args[0]) for f in db.facts("available")}
        missing = set(agents) - available
        if missing:
            return "agents never released: %s" % sorted(missing)
        return None

    return invariant


def _lab_runner_factory(iterate: bool, n_items: int, max_configs: int):
    def runner(plan: FaultPlan, retry_attempts: int) -> Tuple[bool, Optional[str]]:
        from ..core.errors import ReproError
        from ..lims import build_lab_simulator, lab_agents, sample_batch

        # Plain runs compile the graceful-degradation rules (a faulted
        # task records ``aborted`` instead of deadlocking everything);
        # the recovery run compiles strictly, so a commit there means
        # the faults were genuinely outlived, not papered over.
        sim = build_lab_simulator(
            iterate=iterate,
            max_configs=max_configs,
            abortable=not retry_attempts,
        )
        items = sample_batch(n_items)
        agents = tuple(a.name for a in lab_agents())
        try:
            result = sim.run(
                items,
                fault_plan=plan,
                retry_attempts=retry_attempts,
                retry_budget=_ATTEMPT_BUDGET if retry_attempts else None,
            )
        except (ReproError, RuntimeError):
            return False, None
        invariant = _lab_invariant(items, agents)
        if retry_attempts:
            # Token facts were injected inside ``run``; the initial
            # database for the replay certificate is not reconstructable
            # here, so the recovery run is judged on the (token-stripped)
            # invariant alone -- the certificate is covered by the plain
            # runs and the interpreter's own trace tests.
            return True, invariant(_strip_recovery(result.history))
        db0 = sim.initial_database(items)
        return True, _check_committed(result.execution, db0, invariant)

    return runner


# -- the suite ----------------------------------------------------------------


def chaos_workloads() -> List[ChaosWorkload]:
    """The differential chaos suite: the five profile-config shapes
    (nonrecursive iso, tabled-style search, genome TD, compiled lab
    workflow, iterated lab workflow) plus an iso-hardened genome
    variant, each with fault targets drawn from its own predicates."""
    return [
        ChaosWorkload(
            "bank_transfer",
            "nested banking transfer; invariant: money conserved",
            predicates=("balance",),
            agents=(),
            runner=lambda plan, n: _run_td(
                _BANK_TD, "transfer(a, b, 30)", _BANK_DB,
                _bank_invariant, plan, n,
            ),
        ),
        ChaosWorkload(
            "path_query",
            "transitive closure with a recorded answer; invariant: "
            "only reachable nodes recorded",
            predicates=("reached", "e"),
            agents=(),
            runner=lambda plan, n: _run_td(
                _PATH_TD, "path(a, Y) * ins.reached(Y)", _PATH_DB,
                _path_invariant, plan, n,
            ),
        ),
        ChaosWorkload(
            "genome_simulate",
            "genome lab TD program, 2 samples; invariant: agents "
            "restored, no half-processed sample",
            predicates=("done", "workitem"),
            agents=_GENOME_AGENTS,
            runner=lambda plan, n: _run_td(
                _GENOME_TD, "simulate", _GENOME_DB,
                _genome_invariant, plan, n,
            ),
        ),
        ChaosWorkload(
            "genome_iso",
            "genome lab with iso-wrapped instances; same invariant, "
            "atomic per-sample commits",
            predicates=("done", "workitem"),
            agents=_GENOME_AGENTS,
            runner=lambda plan, n: _run_td(
                _GENOME_ISO_TD, "simulate", _GENOME_DB,
                _genome_invariant, plan, n,
            ),
        ),
        ChaosWorkload(
            "lab_workflow",
            "compiled gel pipeline, batch of 2, abortable tasks; "
            "invariant: every item accounted for, agents released",
            predicates=("done", "workitem", "started"),
            agents=("clerk0", "tech0", "tech1", "rig0", "reader0"),
            runner=_lab_runner_factory(False, 2, 600_000),
        ),
        ChaosWorkload(
            "lab_iterate",
            "gel pipeline with the conclusive-result loop, 1 sample",
            predicates=("done", "conclusive"),
            agents=("tech1", "reader0"),
            runner=_lab_runner_factory(True, 1, 600_000),
        ),
    ]


def store_workloads() -> List[ChaosWorkload]:
    """The opt-in storage-fault family behind ``tdlog chaos
    --store-faults``: crash-point and byte-corruption fuzzing of the
    durable store (:mod:`repro.faults.fuzz`).  Kept out of
    :func:`chaos_workloads` on purpose -- the default suite's committed
    reports predate it and must stay byte-identical.

    The fault *plan* only contributes its seed here: the store fuzzer
    derives the crash point, script, and byte mutation from it
    directly, and a case that ends in oracle-equal recovery or a clean
    refusal counts as committed -- the violation channel is reserved
    for what must never happen (out-of-oracle state, raw traceback,
    fsck disagreeing with the store).
    """

    def crash_runner(plan: FaultPlan, retry_attempts: int):
        from .fuzz import run_crash_case
        from .plan import CRASH_POINTS

        point = CRASH_POINTS[plan.seed % len(CRASH_POINTS)]
        outcome = run_crash_case(point, plan.seed)
        return True, outcome.violation

    def corruption_runner(plan: FaultPlan, retry_attempts: int):
        from .fuzz import run_corruption_case

        outcome = run_corruption_case(plan.seed)
        return True, outcome.violation

    return [
        ChaosWorkload(
            "store_crashpoints",
            "durable store killed at a seeded named crash point; "
            "invariant: reopen recovers a committed state",
            predicates=(),
            agents=(),
            runner=crash_runner,
        ),
        ChaosWorkload(
            "store_fuzz",
            "durable store bytes flipped/truncated by seed; invariant: "
            "recovery reaches a WAL-prefix state or refuses cleanly",
            predicates=(),
            agents=(),
            runner=corruption_runner,
        ),
    ]


def workload_by_name(name: str) -> ChaosWorkload:
    catalogue = chaos_workloads() + store_workloads()
    for workload in catalogue:
        if workload.name == name:
            return workload
    raise KeyError(
        "unknown chaos workload %r (have: %s)"
        % (name, ", ".join(w.name for w in catalogue))
    )


# -- the harness --------------------------------------------------------------


@dataclass(frozen=True)
class PlanOutcome:
    """What one fault plan did to one workload.

    ``recovered`` is ``None`` when no recovery run was needed (the
    plain run committed, or the plan was not transient), else whether
    the retry-wrapped run committed.
    """

    seed: int
    transient: bool
    committed: bool
    recovered: Optional[bool]
    violation: Optional[str]


@dataclass(frozen=True)
class ChaosReport:
    """All outcomes for one workload."""

    workload: str
    outcomes: Tuple[PlanOutcome, ...]

    @property
    def commits(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def aborts(self) -> int:
        return sum(1 for o in self.outcomes if not o.committed)

    @property
    def recoveries(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    @property
    def violations(self) -> List[PlanOutcome]:
        return [o for o in self.outcomes if o.violation]


def _retry_attempts(plan: FaultPlan) -> int:
    # Each failed isolated attempt advances the injector by at least one
    # tick, so horizon + 3 attempts guarantee one attempt runs entirely
    # after every window has closed.
    return plan.horizon + 3


def run_one_plan(workload: ChaosWorkload, plan: FaultPlan) -> PlanOutcome:
    """Run *workload* under *plan*; on a transient plan that blocked
    commit, also run the retry-wrapped recovery check."""
    committed, violation = workload.runner(plan, 0)
    recovered: Optional[bool] = None
    if not committed and plan.transient:
        recovered, retry_violation = workload.runner(
            plan, _retry_attempts(plan)
        )
        if violation is None:
            violation = retry_violation
        if not recovered and violation is None:
            violation = (
                "transient plan but retry-wrapped goal failed to commit"
            )
    return PlanOutcome(
        seed=plan.seed,
        transient=plan.transient,
        committed=committed,
        recovered=recovered,
        violation=violation,
    )


def run_chaos(
    workloads: Optional[Sequence[ChaosWorkload]] = None,
    plans: int = 50,
    base_seed: int = 0,
    allow_exhaustion: bool = True,
) -> List[ChaosReport]:
    """Run *plans* seeded fault plans against each workload.

    Plan seeds are ``base_seed + i`` for ``i`` in ``range(plans)``, so
    the whole suite is one integer away from reproducible; passing the
    same arguments yields an identical report everywhere.
    """
    if workloads is None:
        workloads = chaos_workloads()
    reports: List[ChaosReport] = []
    for workload in workloads:
        outcomes = []
        for i in range(plans):
            plan = generate_plan(
                base_seed + i,
                predicates=workload.predicates,
                agents=workload.agents,
                allow_exhaustion=allow_exhaustion,
            )
            outcomes.append(run_one_plan(workload, plan))
        reports.append(ChaosReport(workload.name, tuple(outcomes)))
    return reports


def format_report(reports: Sequence[ChaosReport]) -> str:
    """The chaos run as deterministic text (no wall clock, no ordering
    dependence beyond the fixed workload/seed order)."""
    lines: List[str] = []
    total_violations = 0
    for report in reports:
        n = len(report.outcomes)
        lines.append("chaos: %s (%d plans)" % (report.workload, n))
        lines.append("  committed under faults : %d" % report.commits)
        lines.append("  blocked by faults      : %d" % report.aborts)
        lines.append("  recovered via retry    : %d" % report.recoveries)
        lines.append(
            "  atomicity violations   : %d" % len(report.violations)
        )
        for outcome in report.violations:
            lines.append(
                "    seed %d: %s" % (outcome.seed, outcome.violation)
            )
        total_violations += len(report.violations)
    lines.append(
        "chaos verdict: %s (%d workload(s), %d violation(s))"
        % (
            "FAIL" if total_violations else "OK",
            len(reports),
            total_violations,
        )
    )
    return "\n".join(lines)
