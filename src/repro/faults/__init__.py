"""Deterministic fault injection and transactional recovery for TD.

The paper's robustness story is semantic -- a failed (sub)transaction
leaves no trace, and ``iso(a)`` gives atomic units with relative commit
and rollback-on-failure -- but semantics only counts for executions
that actually *fail*.  This package exercises failure on purpose:

``plan``
    Seeded, fully deterministic :class:`FaultPlan` values: which steps
    fail, when agents are unavailable, when scheduling turns
    adversarial, when the budget or deadline is forced to fire.  Same
    seed, same plan, same perturbed execution -- always.
``inject``
    The :class:`FaultInjector` the interpreter consults once per
    configuration expansion (the ``faults=`` hook on
    :class:`~repro.core.interpreter.Interpreter`), advancing one *tick*
    per expansion so fault windows open and close as the search runs.
``recovery``
    Paper-faithful recovery combinators compiled to ordinary TD rules:
    ``retry(a, n)`` (bounded recursion over ``iso(a)``),
    ``fallback(a, b)``, ``with_budget(a, k)``, ``compensate(a, undo)``.
``chaos``
    The differential chaos harness behind ``tdlog chaos``: run a
    workload under many seeded fault plans and report commits, aborts,
    and (what must never happen) atomicity violations.
"""

from .chaos import (
    ChaosReport,
    ChaosWorkload,
    chaos_workloads,
    format_report,
    run_chaos,
    run_one_plan,
    store_workloads,
    workload_by_name,
)
from .fuzz import (
    FuzzOutcome,
    format_fuzz_report,
    run_corruption_case,
    run_crash_case,
    run_store_fuzz,
)
from .inject import FaultInjector
from .plan import (
    CRASH_POINTS,
    AdversarialOrder,
    AgentOutage,
    Exhaustion,
    FaultPlan,
    StepFault,
    StoreCrash,
    Window,
    generate_plan,
)
from .recovery import Recovered, compensate, fallback, retry, with_budget

__all__ = [
    "AdversarialOrder",
    "AgentOutage",
    "CRASH_POINTS",
    "ChaosReport",
    "ChaosWorkload",
    "Exhaustion",
    "FaultInjector",
    "FaultPlan",
    "FuzzOutcome",
    "Recovered",
    "StepFault",
    "StoreCrash",
    "Window",
    "chaos_workloads",
    "compensate",
    "fallback",
    "format_fuzz_report",
    "format_report",
    "generate_plan",
    "retry",
    "run_chaos",
    "run_corruption_case",
    "run_crash_case",
    "run_one_plan",
    "run_store_fuzz",
    "store_workloads",
    "with_budget",
    "workload_by_name",
]
