"""Exception hierarchy for the Transaction Datalog engines."""

from __future__ import annotations

__all__ = [
    "TDError",
    "SafetyError",
    "SearchBudgetExceeded",
    "UnsupportedProgramError",
]


class TDError(Exception):
    """Base class for engine errors."""


class SafetyError(TDError):
    """An elementary update or builtin was executed with unbound variables.

    TD is a safe language; engines surface violations loudly instead of
    guessing bindings.
    """


class SearchBudgetExceeded(TDError):
    """The search exhausted its configuration budget without an answer.

    Full TD is RE-complete, so the interpreter is a *semi*-decision
    procedure: when the budget runs out the query's status is unknown,
    which is reported as this exception rather than as failure.
    """

    def __init__(self, explored: int, budget: int):
        super().__init__(
            "search explored %d configurations (budget %d) without "
            "resolving the goal" % (explored, budget)
        )
        self.explored = explored
        self.budget = budget


class UnsupportedProgramError(TDError):
    """A program uses features outside the selected engine's sublanguage
    (e.g. concurrent composition fed to the sequential evaluator)."""
