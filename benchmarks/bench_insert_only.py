"""Experiment C6: test+insert TD -- the scientific-workflow fragment.

Paper artifact: the observation that augmenting tuple testing with
insertion (but not deletion) captures scientific workflows, whose
experiment histories "are accumulated in the database ... but never
deleted or altered", and keeps evaluation tame.

Measured faces:

* reachability by insert-only materialization scales polynomially;
* monitoring queries over growing LIMS histories (the genome-center
  workload) stay polynomial.
"""

import pytest

from repro import Interpreter, parse_goal
from repro.complexity import (
    chain_edges,
    estimate_growth,
    insert_only_closure,
    measure,
    print_series,
)
from repro.datalog import evaluate
from repro.lims import synthetic_history
from repro.workflow import history_program, task_counts


def test_insert_only_reachability_scales(benchmark):
    program = insert_only_closure()
    rows = []
    sizes = []
    steps = []
    for n in (4, 8, 12, 16, 20):
        db = chain_edges(n)
        interp = Interpreter(program, max_configs=5_000_000)
        goal = parse_goal("reach(0, %d)" % n)
        exe, seconds = measure(lambda: interp.simulate(goal, db))
        assert exe is not None
        rows.append([n, len(exe.trace), seconds])
        sizes.append(n)
        steps.append(len(exe.trace))
    print_series(
        "C6: insert-only reachability (monotone materialization)",
        ["chain length", "trace length", "seconds"],
        rows,
    )
    # growth fit over the machine-independent step counter (timings on a
    # shared box are too noisy for the coarse poly/exp classifier)
    assert estimate_growth(sizes, steps) == "polynomial"


    db = chain_edges(8)
    interp = Interpreter(program, max_configs=5_000_000)
    goal = parse_goal("reach(0, 8)")
    benchmark.pedantic(lambda: interp.simulate(goal, db), rounds=3, iterations=1)


def test_insert_only_failure_decided(benchmark):
    """Unreachable targets fail *finitely* -- but nondeterministic
    materialization refutes by exhausting the lattice of partial
    closures, which is exponential.  Deterministic saturation (the
    Datalog engine on the same monotone rules) refutes in polynomial
    time: the measured gap is the practical content of the paper's
    remark that Datalog technology applies to this fragment."""
    from repro.complexity import transitive_closure_program
    from repro.datalog import evaluate, from_td

    program = insert_only_closure()
    datalog = from_td(transitive_closure_program())
    rows = []
    for n in (2, 3, 4):
        db = chain_edges(n)
        interp = Interpreter(program, max_configs=5_000_000)
        goal = parse_goal("reach(%d, 0)" % n)  # against the chain direction
        exe, td_seconds = measure(lambda: interp.simulate(goal, db))
        assert exe is None

        def saturate_and_check():
            from repro import atom

            facts = evaluate(datalog, db)
            return atom("path", n, 0) in facts

        reached, dl_seconds = measure(saturate_and_check)
        assert not reached
        rows.append([n, td_seconds, dl_seconds])
    print_series(
        "C6: refuting unreachability -- nondet materialization vs saturation",
        ["chain length", "TD search s", "saturation s"],
        rows,
    )
    # the deterministic refutation stays far cheaper as n grows
    assert rows[-1][2] < rows[-1][1]

    db = chain_edges(4)
    interp = Interpreter(program, max_configs=5_000_000)
    goal = parse_goal("reach(4, 0)")
    benchmark.pedantic(lambda: interp.simulate(goal, db), rounds=3, iterations=1)


def test_history_queries_scale(benchmark):
    """Monitoring the insert-only experiment history: classical Datalog
    over histories of growing size (the LabFlow-1-style workload)."""
    rows = []
    sizes = []
    times = []
    for n in (50, 100, 200, 400):
        history = synthetic_history(n, seed=n)
        facts, seconds = measure(lambda: evaluate(history_program(), history))
        assert len(facts.facts("touched")) == n
        counts = task_counts(history)
        assert counts["analyze"] == n
        rows.append([n, len(history), seconds])
        sizes.append(len(history))
        times.append(max(seconds, 1e-6))
    print_series(
        "C6: monitoring queries over LIMS histories",
        ["samples", "|history|", "seconds"],
        rows,
    )
    assert estimate_growth(sizes, times) == "polynomial"

    history = synthetic_history(200, seed=0)
    benchmark.pedantic(
        lambda: evaluate(history_program(), history), rounds=3, iterations=1
    )
