"""Quantified Boolean formulas in sequential TD.

The engine room of Theorem 4.5's lower bound is *alternation*: recursive
subroutines give universal branching (a rule body ``check(a) * check(b)``
succeeds only if both subgoals do), rule choice gives existential
branching.  QBF evaluation is the textbook alternation-complete problem,
so its TD encoding makes the mechanism concrete and testable:

* an existential variable is assigned by *choosing* one of two rules
  (set true / set false);
* a universal variable is assigned *both ways in sequence*, with the
  assignment undone between branches (insertion + deletion of
  ``asg(V, B)`` facts -- the state is the evaluator's blackboard);
* the matrix is checked against the assignment facts.

The encoding is sequential TD with deletion and non-tail recursion --
squarely in the EXPTIME fragment, and indeed evaluation is exponential
in the number of quantifiers, as measured in ``bench_seq_exptime``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Sequence, Tuple

from ..core.database import Database
from ..core.formulas import Call, Del, Formula, Ins, Test, conc, seq
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable, atom

__all__ = ["QBF", "Clause", "evaluate_qbf", "qbf_to_td"]

#: A literal: (variable name, polarity).  A clause is a disjunction.
Literal = Tuple[str, bool]
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class QBF:
    """A prenex QBF with a CNF matrix.

    ``prefix`` lists ``(quantifier, variable)`` pairs, quantifier in
    ``"exists"``/``"forall"``; every matrix variable must be quantified.
    """

    prefix: Tuple[Tuple[str, str], ...]
    matrix: Tuple[Clause, ...]

    def __post_init__(self):
        names = [v for _q, v in self.prefix]
        if len(set(names)) != len(names):
            raise ValueError("duplicate quantified variable")
        quantified = set(names)
        for clause in self.matrix:
            for var, _pol in clause:
                if var not in quantified:
                    raise ValueError("free variable %r in matrix" % var)
        for q, _v in self.prefix:
            if q not in ("exists", "forall"):
                raise ValueError("bad quantifier %r" % q)


def evaluate_qbf(qbf: QBF) -> bool:
    """Native recursive evaluation (the oracle)."""

    def recurse(index: int, assignment: Dict[str, bool]) -> bool:
        if index == len(qbf.prefix):
            return all(
                any(assignment[v] == pol for v, pol in clause)
                for clause in qbf.matrix
            )
        quantifier, var = qbf.prefix[index]
        outcomes = (
            recurse(index + 1, {**assignment, var: value})
            for value in (True, False)
        )
        return any(outcomes) if quantifier == "exists" else all(outcomes)

    return recurse(0, {})


def _bool_const(value: bool) -> Constant:
    return Constant("true" if value else "false")


def qbf_to_td(qbf: QBF) -> Tuple[Program, Formula, Database]:
    """Encode *qbf* into sequential TD.

    Returns ``(program, goal, initial db)``; the goal commits iff the
    formula is true.  The database holds the clause structure
    (``lit(ClauseId, Var, Pol)`` facts), so for a fixed prefix shape the
    matrix is pure data.

    Rules (generated per quantifier level ``k`` over variable ``v``)::

        level_k <- ins.asg(v, true)  * level_{k+1} * del.asg(v, true).   % exists: choice
        level_k <- ins.asg(v, false) * level_{k+1} * del.asg(v, false).
        % forall: both branches in sequence
        level_k <- ins.asg(v, true)  * level_{k+1} * del.asg(v, true) *
                   ins.asg(v, false) * level_{k+1} * del.asg(v, false).

    and the matrix check walks clause ids 0..m-1 requiring a satisfied
    literal in each::

        check(K) <- nclauses(K).
        check(K) <- lit(K, V, P) * asg(V, P) * K2 is K + 1 * check(K2).
    """
    rules: List[Rule] = []
    n = len(qbf.prefix)
    for k, (quantifier, var) in enumerate(qbf.prefix):
        head = atom("level%d" % k)
        next_call = Call(atom("level%d" % (k + 1)))
        t, f = _bool_const(True), _bool_const(False)
        set_t = Ins(atom("asg", var, "true"))
        clr_t = Del(atom("asg", var, "true"))
        set_f = Ins(atom("asg", var, "false"))
        clr_f = Del(atom("asg", var, "false"))
        if quantifier == "exists":
            rules.append(Rule(head, seq(set_t, next_call, clr_t)))
            rules.append(Rule(head, seq(set_f, next_call, clr_f)))
        else:
            rules.append(
                Rule(
                    head,
                    seq(set_t, next_call, clr_t, set_f, next_call, clr_f),
                )
            )
    # innermost level: check the matrix
    rules.append(Rule(atom("level%d" % n), Call(atom("check", 0))))

    k_var, v_var, p_var, k2_var = (Variable(x) for x in ("K", "V", "P", "K2"))
    from ..core.formulas import BinOp, Builtin

    rules.append(Rule(Atom("check", (k_var,)), Test(Atom("nclauses", (k_var,)))))
    rules.append(
        Rule(
            Atom("check", (k_var,)),
            seq(
                Test(Atom("lit", (k_var, v_var, p_var))),
                Test(Atom("asg", (v_var, p_var))),
                Builtin("is", k2_var, BinOp("+", k_var, Constant(1))),
                Call(Atom("check", (k2_var,))),
            ),
        )
    )

    facts: List[Atom] = [atom("nclauses", len(qbf.matrix))]
    for cid, clause in enumerate(qbf.matrix):
        for var, pol in clause:
            facts.append(atom("lit", cid, var, "true" if pol else "false"))

    program = Program(rules)
    return program, Call(atom("level0")), Database(facts)
