"""Cross-process writer lease for durable stores.

SQLite's WAL mode already lets any number of readers share a ``.tdlog``
file with one writer, but nothing stops *two* writers from opening the
same store and interleaving WAL appends -- each with its own in-memory
mirror, each convinced it owns the state.  The lease file closes that
hole: a ``PATH.lease`` sidecar holding the current writer's identity
(pid, lease generation, acquisition/renewal timestamps), guarded by an
``fcntl.flock`` on the sidecar where the platform supports it.

Acquisition protocol:

1. Open (create) ``PATH.lease`` and try a non-blocking ``LOCK_EX``.
   Success means no live process holds the lease -- ``flock`` dies with
   its holder, so a crashed writer never wedges the store.  Write a
   fresh holder record (generation bumped) and keep the descriptor.
2. On conflict, read the holder record.  A record whose ``renewed_at``
   is older than the TTL is *stale* (the holder is hung or the clock
   says it stopped renewing): take over by unlinking the sidecar and
   re-acquiring -- the new file gets a new inode, so the old holder's
   lock now guards an orphan.  The old holder discovers the theft on
   its next :meth:`check` (the inode under the path changed) and must
   stop writing.
3. A fresh record from a live holder raises
   :class:`~repro.store.base.StoreBusy` with the holder's identity.

The clock is injectable (tests drive takeover deterministically); pid
liveness is probed with ``os.kill(pid, 0)`` as a second staleness
signal -- a record whose pid is gone is stale regardless of age.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Callable, Optional

from .base import StoreBusy, StoreError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None

__all__ = ["WriterLease", "LEASE_SUFFIX", "DEFAULT_LEASE_TTL", "read_lease"]

LEASE_SUFFIX = ".lease"

#: Seconds without renewal after which a lease is considered stale and
#: may be taken over.  Writers renew lazily on WAL appends, so the TTL
#: must comfortably exceed the longest expected gap between writes of a
#: healthy writer that still wants the store.
DEFAULT_LEASE_TTL = 30.0


def read_lease(store_path: str) -> Optional[dict]:
    """The current holder record of *store_path*'s lease sidecar, or
    ``None`` when no sidecar exists / it holds no parsable record."""
    try:
        with open(store_path + LEASE_SUFFIX) as handle:
            raw = handle.read()
    except OSError:
        return None
    try:
        record = json.loads(raw)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


class WriterLease:
    """The writer side of the lease protocol; one instance per open
    writable :class:`~repro.store.sqlite.SqliteStore`."""

    def __init__(
        self,
        store_path: str,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
    ):
        self.path = store_path + LEASE_SUFFIX
        self.ttl = ttl
        self._clock = clock
        self._fd: Optional[int] = None
        self.generation = 0
        self._last_renew = 0.0
        self.took_over = False

    # -- acquisition ----------------------------------------------------------

    def acquire(self) -> None:
        holder = read_lease(self.path[: -len(LEASE_SUFFIX)])
        fd = self._try_flock()
        if fd is None:
            # A live descriptor holds the lock.  Stale metadata (TTL
            # expired, or the recorded pid is dead) still permits
            # takeover: unlink + re-acquire moves the path to a fresh
            # inode the old lock does not cover.
            if holder is not None and not self._stale(holder):
                raise StoreBusy(
                    "%s: writer lease held by pid %s (age %.1fs, ttl %.1fs)"
                    % (
                        self.path,
                        holder.get("pid"),
                        max(0.0, self._clock() - float(holder.get("renewed_at", 0.0))),
                        self.ttl,
                    )
                )
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self.took_over = True
            fd = self._try_flock()
            if fd is None:
                raise StoreBusy(
                    "%s: writer lease contended during stale takeover" % self.path
                )
        self._fd = fd
        self.generation = int((holder or {}).get("generation", 0)) + 1
        self._write_record()

    def _try_flock(self) -> Optional[int]:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-posix: metadata only
            return fd
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            os.close(fd)
            if exc.errno in (errno.EACCES, errno.EAGAIN):
                return None
            raise StoreError("%s: cannot lock lease file: %s" % (self.path, exc))
        return fd

    def _stale(self, holder: dict) -> bool:
        try:
            pid = int(holder.get("pid", -1))
        except (TypeError, ValueError):
            return True
        if pid > 0 and not _pid_alive(pid):
            return True
        try:
            renewed = float(holder.get("renewed_at", 0.0))
        except (TypeError, ValueError):
            return True
        return self._clock() - renewed > self.ttl

    def _write_record(self) -> None:
        now = self._clock()
        record = {
            "pid": os.getpid(),
            "generation": self.generation,
            "acquired_at": now,
            "renewed_at": now,
            "ttl": self.ttl,
        }
        payload = json.dumps(record, sort_keys=True).encode("ascii")
        assert self._fd is not None
        os.lseek(self._fd, 0, os.SEEK_SET)
        os.ftruncate(self._fd, 0)
        os.write(self._fd, payload)
        self._last_renew = now

    # -- steady state ---------------------------------------------------------

    def renew(self) -> None:
        """Refresh ``renewed_at`` when half the TTL has passed (cheap to
        call on every WAL append)."""
        if self._fd is None:
            return
        now = self._clock()
        if now - self._last_renew < self.ttl / 2.0:
            return
        self._write_record()

    def check(self) -> None:
        """Raise :class:`StoreBusy` if the lease was stolen (the sidecar
        path no longer names the inode this lease locked)."""
        if self._fd is None:
            return
        try:
            ours = os.fstat(self._fd)
            current = os.stat(self.path)
        except OSError:
            raise StoreBusy(
                "%s: writer lease file vanished (lease taken over?)" % self.path
            )
        if (ours.st_ino, ours.st_dev) != (current.st_ino, current.st_dev):
            raise StoreBusy(
                "%s: writer lease taken over by another process" % self.path
            )

    @property
    def held(self) -> bool:
        return self._fd is not None

    # -- release --------------------------------------------------------------

    def release(self, *, unlink: bool = True) -> None:
        """Drop the lock (idempotent).  With *unlink* the sidecar is
        removed so inspectors see a free lease; a simulated crash passes
        ``unlink=False`` -- the flock dies but the record lingers,
        exactly as after a real kill."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if unlink:
            try:
                current = os.stat(self.path)
                if (os.fstat(fd).st_ino, os.fstat(fd).st_dev) == (
                    current.st_ino,
                    current.st_dev,
                ):
                    os.unlink(self.path)
            except OSError:
                pass
        try:
            os.close(fd)  # closing drops the flock
        except OSError:  # pragma: no cover - defensive
            pass
