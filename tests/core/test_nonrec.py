"""Tests for the nonrecursive-TD evaluator."""

import pytest

from repro import (
    Database,
    Interpreter,
    NonrecursiveEngine,
    parse_database,
    parse_goal,
    parse_program,
)


def engine(text):
    return NonrecursiveEngine(parse_program(text))


class TestEvaluation:
    def test_layered_calls(self):
        e = engine(
            """
            top(X) <- mid(X) * ins.seen(X).
            mid(X) <- bot(X).
            bot(X) <- fact(X).
            """
        )
        sols = list(e.solve(parse_goal("top(X)"), parse_database("fact(a). fact(b).")))
        assert len(sols) == 2

    def test_updates_compose(self):
        e = engine(
            """
            move(X) <- take(X) * put(X).
            take(X) <- src(X) * del.src(X).
            put(X) <- ins.dst(X).
            """
        )
        (sol,) = e.solve(parse_goal("move(a)"), parse_database("src(a)."))
        assert sol.database == parse_database("dst(a).")

    def test_negation_and_builtins(self):
        e = engine("ok(X) <- val(X, V) * V >= 10 * not banned(X).")
        db = parse_database("val(a, 5). val(b, 20). val(c, 30). banned(c).")
        sols = list(e.solve(parse_goal("ok(X)"), db))
        assert sorted(str(t) for s in sols for t in s.bindings.values()) == ["b"]

    def test_memoization_shares_subcalls(self):
        # Same subquery twice: memo means answers stay consistent.
        e = engine(
            """
            pairup <- widget(X) * widget(Y) * ins.pair(X, Y).
            """
        )
        sols = list(e.solve(parse_goal("pairup"), parse_database("widget(a). widget(b).")))
        assert len(sols) == 4


class TestConcurrentFallback:
    def test_nonrecursive_with_conc_falls_back(self):
        e = engine(
            """
            both <- left | right.
            left <- ins.l.
            right <- ins.r.
            """
        )
        (sol,) = e.solve(parse_goal("both"), Database())
        assert sol.database == parse_database("l. r.")

    def test_concurrent_goal_on_sequential_program(self):
        e = engine("mark(X) <- ins.m(X).")
        sols = list(e.solve(parse_goal("mark(a) | mark(b)"), Database()))
        assert sols[0].database == parse_database("m(a). m(b).")


class TestAgreementWithInterpreter:
    CASES = [
        ("p(X) <- q(X) * ins.r(X).", "p(X)", "q(a). q(b)."),
        ("t <- a(X) * not b(X) * ins.c(X).", "t", "a(u). a(v). b(u)."),
        ("w <- x(V) * V > 2 * del.x(V).", "w", "x(1). x(5)."),
    ]

    @pytest.mark.parametrize("prog_text,goal_text,db_text", CASES)
    def test_same_final_databases(self, prog_text, goal_text, db_text):
        prog = parse_program(prog_text)
        goal, db = parse_goal(goal_text), parse_database(db_text)
        assert NonrecursiveEngine(prog).final_databases(goal, db) == Interpreter(
            prog
        ).final_databases(goal, db)
