"""Experiment C5: query-only TD coincides with classical Datalog.

Paper artifact: the observation that with tuple testing only, TD *is*
Datalog, so "well-known optimization techniques (such as magic sets or
tabling) can be applied".  We run transitive closure both ways -- the
tabled TD engine and the seminaive Datalog engine -- check the answers
coincide, and compare scaling (seminaive bottom-up wins on total
materialization; that is exactly why the paper's remark matters).
"""

import pytest

from repro import SequentialEngine, atom, parse_goal
from repro.complexity import (
    chain_edges,
    estimate_growth,
    measure,
    print_series,
    transitive_closure_program,
)
from repro.datalog import evaluate, evaluate_naive, from_td


def test_answers_coincide_and_scaling(benchmark):
    program = transitive_closure_program()
    datalog = from_td(program)
    rows = []
    sizes = []
    fact_counts = []
    for n in (8, 16, 24, 32):
        db = chain_edges(n)
        dl_facts, dl_seconds = measure(lambda: evaluate(datalog, db))
        td = SequentialEngine(program)
        _, td_seconds = measure(
            lambda: list(td.solve(parse_goal("path(0, X)"), db))
        )
        # spot-check agreement across the whole closure
        for x in range(0, n + 1, max(1, n // 4)):
            for y in range(0, n + 1, max(1, n // 4)):
                goal = parse_goal("path(%d, %d)" % (x, y))
                assert td.succeeds(goal, db) == (atom("path", x, y) in dl_facts)
        rows.append([n, len(dl_facts.facts("path")), dl_seconds, td_seconds])
        sizes.append(n)
        fact_counts.append(len(dl_facts.facts("path")))
    print_series(
        "C5: transitive closure -- seminaive Datalog vs tabled TD",
        ["chain length", "|path|", "datalog s", "tabled TD s"],
        rows,
    )
    # derivation work is the machine-independent cost proxy: the closure
    # of a chain is quadratic, and the fit must say polynomial
    assert estimate_growth(sizes, fact_counts) == "polynomial"

    db = chain_edges(12)
    benchmark.pedantic(lambda: evaluate(datalog, db), rounds=5, iterations=1)


def test_magic_sets_point_queries(benchmark):
    """The other optimization the paper names: magic sets.  A point
    query near the end of a long chain should not materialize the whole
    quadratic closure."""
    from repro.core.terms import Atom, Constant, Variable
    from repro.datalog import evaluate, magic_query, magic_transform, query

    datalog = from_td(transitive_closure_program())
    y = Variable("Y")
    rows = []
    for n in (20, 40, 80):
        db = chain_edges(n)
        src = Constant(n - 2)
        goal = Atom("path", (src, y))
        magic_answers, magic_s = measure(lambda: magic_query(datalog, db, goal))
        plain_answers, plain_s = measure(lambda: query(datalog, db, goal))
        assert {str(a[y]) for a in magic_answers} == {
            str(a[y]) for a in plain_answers
        }
        magic_prog, seeds, _ = magic_transform(datalog, goal)
        derived = len(evaluate(magic_prog, db.insert_all(seeds))) - len(db) - 1
        full = len(evaluate(datalog, db)) - len(db)
        rows.append([n, derived, full, magic_s, plain_s])
    print_series(
        "C5: magic sets -- facts derived for a point query",
        ["chain length", "magic facts", "full closure", "magic s", "plain s"],
        rows,
    )
    # relevance filtering: magic derives a small fraction of the closure
    assert all(r[1] < r[2] / 4 for r in rows)

    db = chain_edges(40)
    goal = Atom("path", (Constant(38), y))
    benchmark.pedantic(lambda: magic_query(datalog, db, goal), rounds=5, iterations=1)


def test_seminaive_beats_naive(benchmark):
    """The classical optimization, measured: seminaive avoids rederiving
    the whole closure each round."""
    datalog = from_td(transitive_closure_program())
    rows = []
    for n in (8, 16, 24):
        db = chain_edges(n)
        semi, semi_s = measure(lambda: evaluate(datalog, db))
        naive, naive_s = measure(lambda: evaluate_naive(datalog, db))
        assert semi == naive
        rows.append([n, semi_s, naive_s, naive_s / max(semi_s, 1e-9)])
    print_series(
        "C5: seminaive vs naive evaluation",
        ["chain length", "seminaive s", "naive s", "speedup"],
        rows,
    )
    # on the largest size, seminaive should not lose
    assert rows[-1][3] >= 1.0

    db = chain_edges(16)
    benchmark.pedantic(lambda: evaluate(datalog, db), rounds=5, iterations=1)
