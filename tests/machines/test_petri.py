"""Tests for safe Petri nets and their TD embedding."""

import pytest

from repro import select_engine
from repro.machines import PetriNet, petri_to_td


def producer_consumer_net():
    """Classic safe net: producer fills a slot, consumer empties it."""
    return PetriNet(
        places=frozenset({"ready_p", "ready_c", "full", "empty"}),
        transitions={
            "produce": (frozenset({"ready_p", "empty"}), frozenset({"ready_p", "full"})),
            "consume": (frozenset({"ready_c", "full"}), frozenset({"ready_c", "empty"})),
        },
        initial=frozenset({"ready_p", "ready_c", "empty"}),
    )


def line_net():
    return PetriNet(
        places=frozenset({"p", "q", "r"}),
        transitions={
            "t1": (frozenset({"p"}), frozenset({"q"})),
            "t2": (frozenset({"q"}), frozenset({"r"})),
        },
        initial=frozenset({"p"}),
    )


class TestNativeSemantics:
    def test_enabled(self):
        net = line_net()
        assert net.enabled(frozenset({"p"})) == ["t1"]
        assert net.enabled(frozenset({"q"})) == ["t2"]
        assert net.enabled(frozenset()) == []

    def test_fire(self):
        net = line_net()
        assert net.fire(frozenset({"p"}), "t1") == frozenset({"q"})

    def test_fire_disabled_raises(self):
        with pytest.raises(ValueError):
            line_net().fire(frozenset({"q"}), "t1")

    def test_unsafe_firing_detected(self):
        net = PetriNet(
            places=frozenset({"a", "b"}),
            transitions={"t": (frozenset({"a"}), frozenset({"b"}))},
            initial=frozenset({"a", "b"}),
        )
        with pytest.raises(ValueError):
            net.fire(frozenset({"a", "b"}), "t")

    def test_reachable(self):
        net = producer_consumer_net()
        reachable = net.reachable()
        assert frozenset({"ready_p", "ready_c", "full"}) in reachable
        assert len(reachable) == 2

    def test_unknown_place_rejected(self):
        with pytest.raises(ValueError):
            PetriNet(
                places=frozenset({"a"}),
                transitions={"t": (frozenset({"a"}), frozenset({"zz"}))},
                initial=frozenset({"a"}),
            )


class TestTDEmbedding:
    def test_reachability_agreement_line(self):
        net = line_net()
        for target in (frozenset({"q"}), frozenset({"r"}), frozenset({"p", "q"})):
            program, goal, db = petri_to_td(net, target)
            engine = select_engine(program, goal)
            assert engine.succeeds(goal, db) == net.can_reach(target)

    def test_reachability_agreement_producer_consumer(self):
        net = producer_consumer_net()
        reachable_target = frozenset({"ready_p", "ready_c", "full"})
        unreachable_target = frozenset({"full", "empty"})
        for target in (reachable_target, unreachable_target):
            program, goal, db = petri_to_td(net, target)
            engine = select_engine(program, goal)
            assert engine.succeeds(goal, db) == net.can_reach(target)

    def test_embedding_is_decidable_fragment(self):
        # firing rules are nonrecursive; `run` is tail recursion over
        # them: the classifier must place the embedding in a decidable
        # sublanguage, mirroring decidability of safe-net reachability.
        net = line_net()
        program, goal, _db = petri_to_td(net, frozenset({"r"}))
        engine = select_engine(program, goal)
        assert engine.decidable

    def test_initial_marking_as_database(self):
        net = line_net()
        _program, _goal, db = petri_to_td(net, frozenset({"r"}))
        assert len(db) == 1
        assert next(iter(db)).pred == "m"
