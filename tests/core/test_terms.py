"""Unit tests for terms and atoms."""

import pytest

from repro.core.terms import (
    Atom,
    Constant,
    Variable,
    atom,
    const,
    is_ground,
    term_from_python,
    var,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant(2)

    def test_string_and_int_payloads_differ(self):
        assert Constant("1") != Constant(1)

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str(self):
        assert str(Constant("lab")) == "lab"
        assert str(Constant(42)) == "42"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_distinct_from_constant(self):
        assert Variable("X") != Constant("X")

    def test_str(self):
        assert str(Variable("Work")) == "Work"


class TestAtom:
    def test_signature(self):
        a = atom("done", "t1", "w1", "alice")
        assert a.signature == ("done", 3)
        assert a.arity == 3

    def test_propositional_atom(self):
        a = atom("halt")
        assert a.args == ()
        assert str(a) == "halt"

    def test_str_with_args(self):
        a = Atom("p", (Constant("a"), Variable("X")))
        assert str(a) == "p(a, X)"

    def test_is_ground(self):
        assert atom("p", "a", 3).is_ground()
        assert not Atom("p", (Variable("X"),)).is_ground()

    def test_variables_yields_repeats_in_order(self):
        x, y = Variable("X"), Variable("Y")
        a = Atom("p", (x, y, x))
        assert list(a.variables()) == [x, y, x]

    def test_atoms_hashable_and_ordered(self):
        atoms = {atom("p", "a"), atom("p", "a"), atom("q", "a")}
        assert len(atoms) == 2
        assert sorted(atoms) == [atom("p", "a"), atom("q", "a")]


class TestConversions:
    def test_term_from_python_passthrough(self):
        v = Variable("X")
        assert term_from_python(v) is v
        c = Constant("a")
        assert term_from_python(c) is c

    def test_term_from_python_wraps_scalars(self):
        assert term_from_python("a") == Constant("a")
        assert term_from_python(7) == Constant(7)

    def test_term_from_python_rejects_other_types(self):
        with pytest.raises(TypeError):
            term_from_python(3.14)
        with pytest.raises(TypeError):
            term_from_python(["list"])

    def test_const_var_helpers(self):
        assert const("a") == Constant("a")
        assert var("X") == Variable("X")

    def test_is_ground_helper(self):
        assert is_ground([atom("p", "a"), atom("q")])
        assert not is_ground([atom("p", "a"), Atom("q", (Variable("X"),))])


class TestInterning:
    """Constants and atoms are hash-consed: equal values are one object."""

    def test_equal_constants_are_identical(self):
        assert Constant("a") is Constant("a")
        assert Constant(7) is Constant(7)

    def test_bool_and_int_do_not_collide(self):
        # True == 1 in Python; the intern key includes the value's type.
        assert Constant(True) is not Constant(1)
        assert Constant(False) is not Constant(0)

    def test_equal_atoms_are_identical(self):
        assert atom("p", "a", 1) is atom("p", "a", 1)
        assert atom("p") is atom("p")
        assert Atom("p", (Variable("X"),)) is Atom("p", (Variable("X"),))

    def test_distinct_values_stay_distinct(self):
        assert Constant("a") is not Constant("b")
        assert atom("p", "a") is not atom("q", "a")
        assert atom("p", "a") is not atom("p", "a", "a")

    def test_variables_are_not_interned(self):
        # Fresh variables are minted per rule unfolding; interning them
        # would only add table overhead.  Equality is still by name.
        assert Variable("X") == Variable("X")

    def test_groundness_cached_per_atom(self):
        ground = atom("p", "a")
        open_atom = Atom("p", (Variable("X"),))
        assert ground.is_ground()
        assert not open_atom.is_ground()

    def test_pickle_round_trip_preserves_identity(self):
        import pickle

        for original in (Constant("a"), Constant(7), atom("p", "a", 2)):
            assert pickle.loads(pickle.dumps(original)) is original

    def test_interning_survives_collection_of_other_refs(self):
        # The tables are weak: dropping one reference must not corrupt
        # the identity guarantee for survivors.
        import gc

        keep = Constant("keep-me")
        temp = Constant("temp-%d" % id(keep))
        del temp
        gc.collect()
        assert Constant("keep-me") is keep
