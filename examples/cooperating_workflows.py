#!/usr/bin/env python3
"""Networks of cooperating workflows (the paper's Example 3.4).

Two workflows process *related* work items concurrently; one needs
information the other produces and waits for it -- synchronization and
communication purely through the database, TD's signature move.

The scenario mirrors the genome-center case the paper cites: a mapping
workflow produces map data for a DNA sample; the assembly workflow for
the same sample must wait for that data before it can assemble.

Run:  python examples/cooperating_workflows.py
"""

from repro import Database, Interpreter
from repro.core.formulas import Call, conc
from repro.core.terms import Atom, Constant
from repro.workflow import (
    Agent,
    Emit,
    SeqFlow,
    Step,
    Task,
    WaitFor,
    WorkflowSpec,
    compile_workflows,
)
from repro.workflow.compiler import agent_facts


def main() -> None:
    mapping = WorkflowSpec(
        "mapping",
        SeqFlow(Step("digest"), Step("run_map_gel"), Emit("mapdata")),
        (Task("digest", role="tech"), Task("run_map_gel", role="tech")),
    )
    assembly = WorkflowSpec(
        "assembly",
        SeqFlow(Step("pick_clones"), WaitFor("mapdata"), Step("assemble")),
        (Task("pick_clones", role="tech"), Task("assemble", role="analyst")),
    )

    program = compile_workflows([assembly, mapping])
    interp = Interpreter(program, max_configs=2_000_000)
    agents = [Agent("tina", ("tech",)), Agent("ana", ("analyst",))]
    db = Database(agent_facts(agents))

    sample = Constant("dna0007")
    goal = conc(
        Call(Atom("wf_assembly", (sample,))),
        Call(Atom("wf_mapping", (sample,))),
    )

    print("--- running assembly | mapping on sample %s ---" % sample)
    execution = interp.simulate(goal, db, seed=7)
    for event in execution.events:
        print("   ", event)

    print("\n--- synchronization evidence ---")
    events = list(execution.events)
    emit_at = events.index("ins.mapdata(dna0007)")
    assemble_at = next(
        i for i, ev in enumerate(events) if ev.startswith("ins.started(assemble")
    )
    print("    mapdata published at event %d" % emit_at)
    print("    assemble started at event  %d" % assemble_at)
    assert emit_at < assemble_at

    print("\n--- and the assembler alone deadlocks (no producer) ---")
    alone = interp.simulate(Call(Atom("wf_assembly", (sample,))), db)
    print("    assembly alone commits:", alone is not None)


if __name__ == "__main__":
    main()
