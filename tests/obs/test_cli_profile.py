"""CLI profiling flags: --profile summary and --trace-out JSON lines."""

import pytest

from repro.cli import main
from repro.obs import read_jsonl


@pytest.fixture
def bank_files(tmp_path):
    program = tmp_path / "bank.td"
    program.write_text(
        """
        transfer(F, T, Amt) <- iso(withdraw(F, Amt) * deposit(T, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
        """
    )
    db = tmp_path / "bank.facts"
    db.write_text("balance(a, 100). balance(b, 10).")
    return str(program), str(db)


class TestProfileFlag:
    def test_solve_profile_prints_summary(self, bank_files, capsys):
        program, db = bank_files
        rc = main(
            ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db, "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== profile" in out
        assert "engine.sublanguage" in out
        assert "nonrecursive TD" in out
        assert "search.configs_expanded" in out
        assert "budget.spent" in out
        assert "table.misses" in out

    def test_run_profile_prints_summary(self, bank_files, capsys):
        program, db = bank_files
        rc = main(
            ["run", program, "--goal", "transfer(a, b, 30)", "--db", db, "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== profile" in out
        assert "search.configs_expanded" in out

    def test_graph_profile_prints_summary(self, bank_files, capsys):
        program, db = bank_files
        rc = main(
            ["graph", program, "--goal", "transfer(a, b, 30)", "--db", db, "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "statespace.expanded" in out

    def test_no_flags_no_report(self, bank_files, capsys):
        program, db = bank_files
        rc = main(["solve", program, "--goal", "transfer(a, b, 30)", "--db", db])
        assert rc == 0
        assert "== profile" not in capsys.readouterr().out


class TestTraceOutFlag:
    def test_solve_trace_out_writes_jsonl(self, bank_files, tmp_path, capsys):
        program, db = bank_files
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "solve", program,
                "--goal", "transfer(a, b, 30)",
                "--db", db,
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        rows = read_jsonl(trace.read_text())
        assert rows, "expected at least one span"
        names = {r["name"] for r in rows}
        assert "solve" in names
        for row in rows:
            assert set(row) >= {"span_id", "parent_id", "name", "start", "end"}

    def test_run_trace_contains_iso_subsearch(self, bank_files, tmp_path, capsys):
        program, db = bank_files
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "run", program,
                "--goal", "transfer(a, b, 30)",
                "--db", db,
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        names = [r["name"] for r in read_jsonl(trace.read_text())]
        assert "simulate" in names
        assert "iso-subsearch" in names


class TestTraceAppendFlag:
    def test_default_overwrites(self, bank_files, tmp_path, capsys):
        program, db = bank_files
        trace = tmp_path / "trace.jsonl"
        args = ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
                "--trace-out", str(trace)]
        assert main(args) == 0
        first = len(read_jsonl(trace.read_text()))
        assert main(args) == 0
        assert len(read_jsonl(trace.read_text())) == first

    def test_append_accumulates_runs(self, bank_files, tmp_path, capsys):
        program, db = bank_files
        trace = tmp_path / "trace.jsonl"
        base = ["solve", program, "--goal", "transfer(a, b, 30)", "--db", db,
                "--trace-out", str(trace)]
        assert main(base) == 0
        first = len(read_jsonl(trace.read_text()))
        assert main(base + ["--trace-append"]) == 0
        assert len(read_jsonl(trace.read_text())) == 2 * first
