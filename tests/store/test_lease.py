"""The cross-process writer lease and the SQLITE_BUSY backoff.

``flock`` locks live on the open file description, so two
:class:`WriterLease` instances in one process genuinely contend --
the single-process tests below exercise the same code paths a second
process would.  Clocks and sleeps are injected everywhere, so staleness
and backoff run deterministically.
"""

import json
import sqlite3

import pytest

from repro import SqliteStore, StoreBusy, parse_atom
from repro.obs import Instrumentation, instrumented
from repro.store.lease import LEASE_SUFFIX, WriterLease, read_lease


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestWriterLease:
    def test_acquire_writes_holder_record(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        lease = WriterLease(path, clock=FakeClock())
        lease.acquire()
        try:
            record = read_lease(path)
            assert record["generation"] == 1
            assert record["pid"] > 0
            assert lease.held
        finally:
            lease.release()

    def test_second_writer_is_busy(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        clock = FakeClock()
        first = WriterLease(path, clock=clock)
        first.acquire()
        try:
            second = WriterLease(path, clock=clock)
            with pytest.raises(StoreBusy, match="held by pid"):
                second.acquire()
        finally:
            first.release()

    def test_release_frees_the_lease(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        first = WriterLease(path)
        first.acquire()
        first.release()
        assert read_lease(path) is None
        second = WriterLease(path)
        second.acquire()
        try:
            assert second.held
        finally:
            second.release()

    def test_crash_release_keeps_record_but_frees_lock(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        first = WriterLease(path)
        first.acquire()
        first.release(unlink=False)  # simulated kill
        assert read_lease(path)["generation"] == 1  # record lingers
        second = WriterLease(path)
        second.acquire()  # flock died with the "process": no conflict
        try:
            assert read_lease(path)["generation"] == 2
        finally:
            second.release()

    def test_stale_ttl_takeover(self, tmp_path):
        # A holder that stopped renewing past the TTL loses the lease
        # even though its flock is still held (a hung process).
        path = str(tmp_path / "s.tdlog")
        clock = FakeClock()
        hung = WriterLease(path, ttl=30.0, clock=clock)
        hung.acquire()
        try:
            thief = WriterLease(path, ttl=30.0, clock=clock)
            clock.advance(10.0)
            with pytest.raises(StoreBusy):
                thief.acquire()  # fresh: no takeover yet
            clock.advance(25.0)  # now 35s since renewal > ttl
            thief.acquire()
            try:
                assert thief.took_over
                assert read_lease(path)["generation"] == 2
                # The hung holder must notice on its next check.
                with pytest.raises(StoreBusy, match="taken over"):
                    hung.check()
            finally:
                thief.release()
        finally:
            hung.release()

    def test_renew_is_lazy(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        clock = FakeClock()
        lease = WriterLease(path, ttl=30.0, clock=clock)
        lease.acquire()
        try:
            t0 = read_lease(path)["renewed_at"]
            clock.advance(5.0)
            lease.renew()  # under ttl/2: no write
            assert read_lease(path)["renewed_at"] == t0
            clock.advance(11.0)
            lease.renew()  # past ttl/2: refreshed
            assert read_lease(path)["renewed_at"] == clock.now
        finally:
            lease.release()

    def test_dead_pid_record_is_stale_immediately(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        with open(path + LEASE_SUFFIX, "w") as handle:
            json.dump({"pid": 2 ** 30 + 7, "generation": 5,
                       "renewed_at": 10.0 ** 12}, handle)
        lease = WriterLease(path, clock=FakeClock())
        lease.acquire()  # no flock holder, dead pid: straight through
        try:
            assert read_lease(path)["generation"] == 6
        finally:
            lease.release()


class TestStoreLeaseIntegration:
    def test_two_stores_cannot_both_write(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        first = SqliteStore(path)
        try:
            with pytest.raises(StoreBusy):
                SqliteStore(path)
        finally:
            first.close()
        # After a clean close the lease is free again.
        SqliteStore(path).close()

    def test_injected_crash_frees_the_lease(self, tmp_path):
        from repro import StoreCrashed
        from repro.faults import FaultPlan, StoreCrash, Window

        path = str(tmp_path / "s.tdlog")
        plan = FaultPlan(seed=0, store_crashes=(StoreCrash(Window(1, 2)),))
        store = SqliteStore(path, faults=plan)
        with pytest.raises(StoreCrashed):
            store.insert(parse_atom("p(1)"))
        # The record lingers (like a real kill) but the lock is gone:
        # recovery by reopening works in the same process.
        assert read_lease(path)["generation"] == 1
        with SqliteStore(path) as recovered:
            assert read_lease(path)["generation"] == 2
            recovered.insert(parse_atom("p(2)"))

    def test_readers_share_with_one_writer(self, tmp_path):
        # WAL-mode concurrent-reader consistency: while a writer holds
        # the lease and commits, read-only opens see a consistent
        # (possibly older) committed state -- never a torn one.
        path = str(tmp_path / "s.tdlog")
        with SqliteStore(path) as writer:
            for i in range(5):
                writer.insert(parse_atom("p(%d)" % i))
            with SqliteStore(path, readonly=True) as reader:
                before = set(reader)
                assert before == {parse_atom("p(%d)" % i) for i in range(5)}
                sp = writer.savepoint()
                writer.insert(parse_atom("p(99)"))
                # Uncommitted savepoint state is invisible to readers.
                with SqliteStore(path, readonly=True) as mid:
                    assert set(mid) == before
                writer.release(sp)
            with SqliteStore(path, readonly=True) as after:
                assert parse_atom("p(99)") in set(after)


class _BusyConn:
    """A connection stub whose execute raises SQLITE_BUSY *n* times."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def execute(self, sql, params=()):
        self.calls += 1
        if self.calls <= self.failures:
            raise sqlite3.OperationalError("database is locked")
        return None


class TestBusyBackoff:
    def _store(self, tmp_path, **kw):
        return SqliteStore(str(tmp_path / "s.tdlog"), **kw)

    def test_retries_then_succeeds(self, tmp_path):
        sleeps = []
        store = self._store(tmp_path, busy_retries=5, busy_backoff=0.01,
                            busy_cap=0.5, sleep=sleeps.append)
        try:
            store._conn = _BusyConn(failures=3)
            store._exec("INSERT INTO wal (op, pred, fact) VALUES (?, ?, ?)",
                        ("+", "p", b""))
            # Capped exponential: 0.01, 0.02, 0.04.
            assert sleeps == [0.01, 0.02, 0.04]
        finally:
            store._conn = sqlite3.connect(":memory:")
            store._lease.release()
            store._closed = True

    def test_cap_bounds_the_delay(self, tmp_path):
        sleeps = []
        store = self._store(tmp_path, busy_retries=8, busy_backoff=0.1,
                            busy_cap=0.25, sleep=sleeps.append)
        try:
            store._conn = _BusyConn(failures=5)
            store._exec("SELECT 1")
            assert sleeps == [0.1, 0.2, 0.25, 0.25, 0.25]
        finally:
            store._conn = sqlite3.connect(":memory:")
            store._lease.release()
            store._closed = True

    def test_budget_exhaustion_raises_store_busy(self, tmp_path):
        sleeps = []
        store = self._store(tmp_path, busy_retries=2, busy_backoff=0.01,
                            sleep=sleeps.append)
        try:
            store._conn = _BusyConn(failures=99)
            with pytest.raises(StoreBusy, match="after 2 retries"):
                store._exec("SELECT 1")
            assert len(sleeps) == 2
        finally:
            store._conn = sqlite3.connect(":memory:")
            store._lease.release()
            store._closed = True

    def test_retries_are_counted(self, tmp_path):
        inst = Instrumentation.create()
        with instrumented(inst):
            store = self._store(tmp_path, busy_retries=5, busy_backoff=0.0,
                                sleep=lambda _dt: None)
            try:
                store._conn = _BusyConn(failures=2)
                store._exec("SELECT 1")
            finally:
                store._conn = sqlite3.connect(":memory:")
                store._lease.release()
                store._closed = True
        assert inst.metrics.counters["store.busy_retries"] == 2
