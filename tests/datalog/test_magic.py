"""Tests for the magic-sets transformation."""

import pytest

from repro import Database, atom
from repro.core.terms import Atom, Variable
from repro.datalog import DatalogProgram, DatalogRule, Literal, evaluate, query
from repro.datalog.magic import magic_query, magic_transform

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def tc_program():
    return DatalogProgram([
        DatalogRule(Atom("path", (X, Y)), (Literal(Atom("e", (X, Y))),)),
        DatalogRule(
            Atom("path", (X, Y)),
            (Literal(Atom("e", (X, Z))), Literal(Atom("path", (Z, Y)))),
        ),
    ])


def chain(n):
    return Database([atom("e", i, i + 1) for i in range(n)])


class TestCorrectness:
    def test_bound_free_query(self):
        answers = magic_query(tc_program(), chain(6), Atom("path", (atom("x", 0).args[0], Y)))
        values = sorted(t.value for a in answers for t in a.values())
        assert values == [1, 2, 3, 4, 5, 6]

    def test_fully_bound_query(self):
        answers = magic_query(tc_program(), chain(6), atom("path", 0, 6))
        assert len(answers) == 1
        assert magic_query(tc_program(), chain(6), atom("path", 6, 0)) == []

    def test_free_free_query_degenerates_gracefully(self):
        answers = magic_query(tc_program(), chain(4), Atom("path", (X, Y)))
        plain = query(tc_program(), chain(4), Atom("path", (X, Y)))
        got = {tuple(sorted((str(k), str(v)) for k, v in a.items())) for a in answers}
        want = {tuple(sorted((str(k), str(v)) for k, v in a.items())) for a in plain}
        assert got == want

    @pytest.mark.parametrize("src", [0, 3, 7])
    def test_agrees_with_plain_evaluation(self, src):
        db = chain(8)
        magic = magic_query(tc_program(), db, Atom("path", (atom("q", src).args[0], Y)))
        plain = query(tc_program(), db, Atom("path", (atom("q", src).args[0], Y)))
        assert {str(a[Y]) for a in magic} == {str(a[Y]) for a in plain}

    def test_multirule_program(self):
        # same generation: sg(X, Y), the classic magic-sets example
        prog = DatalogProgram([
            DatalogRule(Atom("sg", (X, X)), (Literal(Atom("person", (X,))),)),
            DatalogRule(
                Atom("sg", (X, Y)),
                (
                    Literal(Atom("par", (X, Z))),
                    Literal(Atom("sg", (Z, Variable("W")))),
                    Literal(Atom("par", (Y, Variable("W")))),
                ),
            ),
        ])
        db = Database(
            [atom("person", p) for p in ("a", "b", "c", "d")]
            + [atom("par", "b", "a"), atom("par", "c", "a"), atom("par", "d", "b")]
        )
        src = atom("q", "b").args[0]
        magic = magic_query(prog, db, Atom("sg", (src, Y)))
        plain = query(prog, db, Atom("sg", (src, Y)))
        assert {str(a[Y]) for a in magic} == {str(a[Y]) for a in plain}


class TestRelevanceFiltering:
    def test_magic_derives_fewer_facts(self):
        """The point of the optimization: a point query on a long chain
        must not materialize the whole quadratic closure."""
        program = tc_program()
        db = chain(30)
        src = atom("q", 25).args[0]
        magic_program, seeds, answer_pred = magic_transform(
            program, Atom("path", (src, Y))
        )
        magic_facts = evaluate(magic_program, db.insert_all(seeds))
        plain_facts = evaluate(program, db)
        derived_magic = len(magic_facts) - len(db) - len(seeds)
        derived_plain = len(plain_facts) - len(db)
        assert derived_magic < derived_plain / 3

    def test_seed_carries_bound_constants(self):
        program = tc_program()
        _mp, seeds, _ap = magic_transform(program, Atom("path", (atom("q", 5).args[0], Y)))
        (seed,) = seeds
        assert seed.args == (atom("q", 5).args[0],)


class TestValidation:
    def test_negation_rejected(self):
        prog = DatalogProgram([
            DatalogRule(
                Atom("ok", (X,)),
                (Literal(Atom("n", (X,))), Literal(Atom("bad", (X,)), positive=False)),
            ),
        ])
        with pytest.raises(ValueError):
            magic_transform(prog, Atom("ok", (X,)))

    def test_query_must_be_idb(self):
        with pytest.raises(ValueError):
            magic_transform(tc_program(), Atom("e", (X, Y)))


class TestMultipleAdornments:
    def test_fb_and_bf_in_one_program(self):
        # ancestor query both directions: the transform must generate
        # distinct adorned predicates for path^bf and path^fb.
        prog = tc_program()
        db = chain(10)
        fwd = magic_query(prog, db, Atom("path", (atom("q", 2).args[0], Y)))
        bwd = magic_query(prog, db, Atom("path", (X, atom("q", 7).args[0])))
        assert {str(a[Y]) for a in fwd} == {str(i) for i in range(3, 11)}
        assert {str(a[X]) for a in bwd} == {str(i) for i in range(0, 7)}

    def test_nonlinear_rule_adornment(self):
        # doubling rule: two recursive body literals with different
        # binding patterns under one head adornment
        prog = DatalogProgram([
            DatalogRule(Atom("p", (X, Y)), (Literal(Atom("e", (X, Y))),)),
            DatalogRule(
                Atom("p", (X, Y)),
                (Literal(Atom("p", (X, Z))), Literal(Atom("p", (Z, Y)))),
            ),
        ])
        db = chain(9)
        got = magic_query(prog, db, Atom("p", (atom("q", 0).args[0], Y)))
        plain = query(prog, db, Atom("p", (atom("q", 0).args[0], Y)))
        assert {str(a[Y]) for a in got} == {str(a[Y]) for a in plain}
