"""Unit tests for immutable database states."""

import pytest

from repro.core.database import Database, Schema, SchemaError
from repro.core.terms import Atom, Variable, atom

X = Variable("X")


class TestConstruction:
    def test_empty(self):
        db = Database()
        assert len(db) == 0
        assert not db

    def test_from_facts(self):
        db = Database([atom("p", "a"), atom("p", "b"), atom("q")])
        assert len(db) == 3
        assert atom("p", "a") in db
        assert atom("q") in db

    def test_duplicates_collapse(self):
        db = Database([atom("p", "a"), atom("p", "a")])
        assert len(db) == 1

    def test_rejects_nonground(self):
        with pytest.raises(ValueError):
            Database([Atom("p", (X,))])

    def test_from_mapping(self):
        db = Database.from_mapping({"p": [("a",), ("b",)], "flag": [()]})
        assert atom("p", "a") in db
        assert atom("flag") in db

    def test_from_mapping_scalar_rows(self):
        db = Database.from_mapping({"p": ["a", 3]})
        assert atom("p", "a") in db
        assert atom("p", 3) in db


class TestEqualityHash:
    def test_content_equality(self):
        d1 = Database([atom("p", "a"), atom("q", "b")])
        d2 = Database([atom("q", "b"), atom("p", "a")])
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_path_independence(self):
        base = Database([atom("p", "a")])
        via1 = base.insert(atom("q", "b")).insert(atom("r", "c"))
        via2 = base.insert(atom("r", "c")).insert(atom("q", "b"))
        assert via1 == via2
        assert hash(via1) == hash(via2)

    def test_not_equal_to_other_types(self):
        assert Database() != frozenset()


class TestUpdates:
    def test_insert_returns_new(self):
        d0 = Database()
        d1 = d0.insert(atom("p", "a"))
        assert atom("p", "a") in d1
        assert atom("p", "a") not in d0

    def test_insert_existing_is_noop_same_object(self):
        d1 = Database([atom("p", "a")])
        assert d1.insert(atom("p", "a")) is d1

    def test_delete(self):
        d1 = Database([atom("p", "a"), atom("p", "b")])
        d2 = d1.delete(atom("p", "a"))
        assert atom("p", "a") not in d2
        assert atom("p", "b") in d2
        assert atom("p", "a") in d1

    def test_delete_absent_is_noop_same_object(self):
        d1 = Database([atom("p", "a")])
        assert d1.delete(atom("q", "x")) is d1
        assert d1.delete(atom("p", "b")) is d1

    def test_delete_last_fact_clears_predicate(self):
        d = Database([atom("p", "a")]).delete(atom("p", "a"))
        assert "p" not in d.predicates()
        assert d == Database()

    def test_insert_all_delete_all(self):
        facts = [atom("p", i) for i in range(5)]
        d = Database().insert_all(facts)
        assert len(d) == 5
        assert d.delete_all(facts) == Database()

    def test_nonground_updates_rejected(self):
        with pytest.raises(ValueError):
            Database().insert(Atom("p", (X,)))
        with pytest.raises(ValueError):
            Database().delete(Atom("p", (X,)))


class TestQueries:
    def test_match_ground(self):
        db = Database([atom("p", "a")])
        assert list(db.match(atom("p", "a"))) == [{}]
        assert list(db.match(atom("p", "b"))) == []

    def test_match_binds_variables(self):
        db = Database([atom("p", "a"), atom("p", "b")])
        results = list(db.match(Atom("p", (X,))))
        values = sorted(str(s[X]) for s in results)
        assert values == ["a", "b"]

    def test_match_respects_subst(self):
        db = Database([atom("p", "a"), atom("p", "b")])
        results = list(db.match(Atom("p", (X,)), {X: atom("x", "a").args[0]}))
        assert len(results) == 1

    def test_holds(self):
        db = Database([atom("p", "a")])
        assert db.holds(Atom("p", (X,)))
        assert not db.holds(atom("q"))

    def test_facts_and_predicates(self):
        db = Database([atom("p", "a"), atom("q", "b")])
        assert db.facts("p") == frozenset({atom("p", "a")})
        assert db.facts("absent") == frozenset()
        assert db.predicates() == {"p", "q"}

    def test_iteration_sorted(self):
        db = Database([atom("q", "z"), atom("p", "b"), atom("p", "a")])
        assert list(db) == [atom("p", "a"), atom("p", "b"), atom("q", "z")]

    def test_difference(self):
        d1 = Database([atom("p", "a"), atom("p", "b")])
        d2 = Database([atom("p", "a")])
        assert d1.difference(d2) == frozenset({atom("p", "b")})

    def test_union_deprecated(self):
        d1 = Database([atom("p", "a")])
        d2 = Database([atom("q", "b")])
        with pytest.warns(DeprecationWarning, match="insert_all"):
            merged = d1.union(d2)
        assert merged == Database([atom("p", "a"), atom("q", "b")])
        assert d1.insert_all(d2) == merged

    def test_public_arg_index(self):
        db = Database([atom("e", "a", "b"), atom("e", "a", "c")])
        idx = db.arg_index("e", 0)
        assert idx is db._arg_index("e", 0)
        assert set(idx[atom("x", "a").args[0]]) == set(db.facts("e"))


class TestArgIndexes:
    """Per-position match indexes and their maintenance across updates.

    Derived databases share index structure with their parent for
    untouched predicates and update the touched one incrementally --
    these tests pin that a stale bucket can never leak through
    delete -> insert chains.
    """

    Y = Variable("Y")

    def test_match_after_delete_then_insert(self):
        # The counter-update shape every bank/lab workload hits:
        # del.balance(a, 100) then ins.balance(a, 70).
        d0 = Database([atom("balance", "a", 100), atom("balance", "b", 10)])
        list(d0.match(Atom("balance", (atom("x", "a").args[0], X))))  # warm index
        d1 = d0.delete(atom("balance", "a", 100)).insert(atom("balance", "a", 70))
        results = list(d1.match(Atom("balance", (atom("x", "a").args[0], X))))
        assert [str(s[X]) for s in results] == ["70"]
        # The parent is untouched.
        parent = list(d0.match(Atom("balance", (atom("x", "a").args[0], X))))
        assert [str(s[X]) for s in parent] == ["100"]

    def test_index_probe_on_second_position(self):
        d = Database([atom("e", "a", "b"), atom("e", "c", "b"), atom("e", "a", "d")])
        results = list(d.match(Atom("e", (X, atom("x", "b").args[0]))))
        assert sorted(str(s[X]) for s in results) == ["a", "c"]

    def test_zero_arg_predicate_match_and_updates(self):
        d0 = Database()
        assert not d0.holds(atom("flag"))
        d1 = d0.insert(atom("flag"))
        assert list(d1.match(atom("flag"))) == [{}]
        d2 = d1.delete(atom("flag"))
        assert list(d2.match(atom("flag"))) == []
        d3 = d2.insert(atom("flag"))
        assert d3.holds(atom("flag"))

    def test_warm_index_consistent_with_cold(self):
        # A pattern answered from a derived db's (incrementally updated)
        # index must equal a from-scratch db's answer.
        facts = [atom("p", i, i * i) for i in range(10)]
        warm = Database(facts)
        pattern = Atom("p", (atom("x", 3).args[0], X))
        list(warm.match(pattern))  # build index on position 0
        for i in range(0, 10, 2):
            warm = warm.delete(atom("p", i, i * i))
        warm = warm.insert(atom("p", 3, 999)).delete(atom("p", 3, 9))
        cold = Database(
            [atom("p", i, i * i) for i in range(1, 10, 2) if i != 3]
            + [atom("p", 3, 999)]
        )
        assert warm == cold
        assert sorted(map(str, (s[X] for s in warm.match(pattern)))) == sorted(
            map(str, (s[X] for s in cold.match(pattern)))
        )

    def test_deleting_last_indexed_fact_empties_bucket(self):
        a_const = atom("x", "a").args[0]
        d0 = Database([atom("p", "a")])
        list(d0.match(Atom("p", (a_const,))))  # warm bucket for "a"
        d1 = d0.delete(atom("p", "a"))
        assert list(d1.match(Atom("p", (a_const,)))) == []
        d2 = d1.insert(atom("p", "a"))
        assert list(d2.match(Atom("p", (a_const,)))) == [{}]


class TestSchema:
    def test_declare_and_check(self):
        s = Schema([("p", 2)])
        s.check(atom("p", "a", "b"))
        with pytest.raises(SchemaError):
            s.check(atom("p", "a"))

    def test_strict_unknown_predicate(self):
        s = Schema([("p", 1)], strict=True)
        with pytest.raises(SchemaError):
            s.check(atom("q", "a"))

    def test_open_schema_learns(self):
        s = Schema(strict=False)
        s.check(atom("q", "a"))
        assert "q" in s

    def test_same_name_different_arity_coexist(self):
        # predicate identity is name/arity: p/1 and p/2 are unrelated
        s = Schema([("p", 1)])
        s.declare("p", 2)
        s.check(atom("p", "a"))
        s.check(atom("p", "a", "b"))
        assert ("p", 1) in s and ("p", 2) in s
        assert ("p", 3) not in s

    def test_signatures_sorted(self):
        s = Schema([("b", 1), ("a", 2)])
        assert s.signatures() == (("a", 2), ("b", 1))
