"""Tracer: span nesting, deterministic ids, JSON-lines round trip."""

import itertools

from repro.obs.tracer import Tracer, read_jsonl


def fake_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


class TestSpans:
    def test_sequential_ids_and_parents(self):
        t = Tracer(clock=fake_clock())
        with t.span("solve") as outer:
            with t.span("iso-subsearch") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.span_id == "s1"
        assert inner.span_id == "s2"
        assert outer.parent_id is None

    def test_children_finish_before_parents(self):
        t = Tracer(clock=fake_clock())
        with t.span("solve"):
            with t.span("table-fixpoint"):
                pass
        assert [s.name for s in t.spans] == ["table-fixpoint", "solve"]

    def test_attrs_recorded(self):
        t = Tracer(clock=fake_clock())
        with t.span("solve", engine="seqeval", goal="p(X)") as span:
            pass
        assert span.attrs == {"engine": "seqeval", "goal": "p(X)"}

    def test_current_span_id_tracks_innermost(self):
        t = Tracer(clock=fake_clock())
        assert t.current_span_id is None
        with t.span("a") as a:
            assert t.current_span_id == a.span_id
            with t.span("b") as b:
                assert t.current_span_id == b.span_id
            assert t.current_span_id == a.span_id
        assert t.current_span_id is None

    def test_out_of_order_finish_is_tolerated(self):
        t = Tracer(clock=fake_clock())
        a = t.start("a")
        b = t.start("b")
        t.finish(a)  # abandoned-generator shape: outer closes first
        t.finish(b)
        assert {s.span_id for s in t.spans} == {a.span_id, b.span_id}
        assert t.current_span_id is None

    def test_max_depth(self):
        t = Tracer(clock=fake_clock())
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
        with t.span("d"):
            pass
        assert t.max_depth == 3


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer(clock=fake_clock())
        with t.span("solve", engine="interpreter"):
            with t.span("iso-subsearch"):
                pass
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(str(path))
        rows = read_jsonl(path.read_text())
        assert len(rows) == 2
        by_name = {r["name"]: r for r in rows}
        assert by_name["iso-subsearch"]["parent_id"] == by_name["solve"]["span_id"]
        assert by_name["solve"]["attrs"] == {"engine": "interpreter"}
        for row in rows:
            assert row["end"] >= row["start"]
            assert row["duration"] == row["end"] - row["start"]

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        t = Tracer(clock=fake_clock())
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(str(path))
        assert read_jsonl(path.read_text()) == []
