"""Machine substrates behind the paper's complexity theorems.

The paper's expressibility results rest on machine simulations:

* full TD is data complete for **RE** because it can simulate Turing
  machines with a *fixed* data domain and schema -- unbounded storage
  lives in recursion depth, not in the database;
* Corollary 4.6 sharpens this: **three** concurrent sequential processes
  suffice, by simulating a two-stack machine -- two processes encode the
  stacks in their recursion depth and the third is the finite control,
  communicating through the database;
* sequential TD reaches **EXPTIME** via alternation (AND/OR search);
* safe Petri nets embed directly into TD (related-work comparison).

This subpackage implements each machine model natively (as an oracle) and
its encoding into TD, so the benchmarks can run both and compare.
"""

from .andor import AndOrGraph, andor_to_td, solve_andor
from .counter import CounterMachine, CounterProgramError, Halt, Inc, Dec
from .encodings import counter_to_td, two_stack_to_td
from .petri import PetriNet, petri_to_td
from .qbf import QBF, evaluate_qbf, qbf_to_td
from .turing import TuringMachine, tm_to_two_stack
from .twostack import TwoStackMachine

__all__ = [
    "AndOrGraph",
    "CounterMachine",
    "CounterProgramError",
    "Dec",
    "Halt",
    "Inc",
    "PetriNet",
    "QBF",
    "TuringMachine",
    "TwoStackMachine",
    "andor_to_td",
    "counter_to_td",
    "evaluate_qbf",
    "petri_to_td",
    "qbf_to_td",
    "solve_andor",
    "tm_to_two_stack",
    "two_stack_to_td",
]
