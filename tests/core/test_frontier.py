"""The canonical-key-bucketed BFS frontier (Interpreter._bfs).

A successor whose canonical key is already awaiting expansion is
*subsumed* -- dropped without occupying a frontier slot and counted in
``frontier.subsumed`` -- which is what bounds ``search.frontier_peak``
on diamond-shaped interleaving lattices.  These tests pin the edge
cases: commuting concurrent branches that reconverge (reordering ties),
identical iso-wrapped branches, and the checkpoint round-trip, where
the subsumption set is deliberately absent from the pickle and
:meth:`Interpreter.resume` re-derives it from the frontier
configurations.

The reducer is switched off in most tests: partial-order reduction
collapses commuting schedules *before* they reach the frontier, and
these tests target the frontier's own dedup of whatever still arrives.
"""

import dataclasses
import pickle

import pytest

from repro import Database, Interpreter, parse_database, parse_program
from repro.core.errors import SearchBudgetExceeded
from repro.core.interpreter import Checkpoint
from repro.obs import Instrumentation, instrumented

#: Three commuting inserts: the naive interleaving lattice is the cube
#: {a}x{b}x{c}, and every path reconverges on the same configurations.
DIAMOND = "go <- ins.a | ins.b | ins.c."


def solve_with_metrics(program_text, goal, db, **interp_kw):
    inst = Instrumentation.create()
    with instrumented(inst):
        interp = Interpreter(parse_program(program_text), **interp_kw)
        solutions = list(interp.solve(goal, db))
    return solutions, inst.metrics


class TestReorderingTies:
    def test_diamond_reconvergence_is_subsumed(self):
        solutions, metrics = solve_with_metrics(
            DIAMOND, "go", Database(), por=False
        )
        assert len(solutions) == 1
        assert solutions[0].database == parse_database("a. b. c.")
        # Level by level: the three two-insert states are each reached
        # twice more while still queued, the full state twice more.
        assert metrics.counter("frontier.subsumed") == 5
        # Subsumption keeps the frontier near the lattice width (one
        # slot per distinct state, briefly two adjacent levels) rather
        # than the number of schedules: without it the peak would carry
        # every duplicate arrival.
        assert metrics.gauge("search.frontier_peak") <= 4

    def test_branch_order_tie_collapses_under_sorting(self):
        # Distinct schedules leave the surviving branches in different
        # textual orders; canonicalization sorts concurrent parts, so
        # the configurations tie and the frontier keeps one copy.
        text = "go <- (ins.a * ins.z) | (ins.b * ins.z)."
        solutions, metrics = solve_with_metrics(
            text, "go", Database(), por=False
        )
        assert len(solutions) == 1
        assert solutions[0].database == parse_database("a. b. z.")
        assert metrics.counter("frontier.subsumed") > 0

    def test_subsumption_is_invisible_in_the_answers(self):
        # Same workload with the reducer on: fewer schedules reach the
        # frontier, identical solutions.
        reduced, _ = solve_with_metrics(DIAMOND, "go", Database(), por=True)
        naive, _ = solve_with_metrics(DIAMOND, "go", Database(), por=False)
        assert [s.database for s in reduced] == [s.database for s in naive]


class TestIsoWrappedDuplicates:
    def test_identical_iso_branches_subsume(self):
        # Each iso branch commits atomically, so both first steps land
        # on literally the same configuration (one iso left, db {a});
        # the second arrival must be subsumed, not re-queued.
        text = "go <- iso(ins.a) | iso(ins.a)."
        solutions, metrics = solve_with_metrics(
            text, "go", Database(), por=False
        )
        assert len(solutions) == 1
        assert solutions[0].database == parse_database("a.")
        assert metrics.counter("frontier.subsumed") == 1

    def test_iso_ties_modulo_branch_sorting(self):
        # The duplicate is only visible modulo concurrent-branch
        # sorting once the surviving branches differ in position.
        text = "go <- iso(ins.a) | iso(ins.b) | iso(ins.a)."
        solutions, metrics = solve_with_metrics(
            text, "go", Database(), por=False
        )
        assert len(solutions) == 1
        assert solutions[0].database == parse_database("a. b.")
        assert metrics.counter("frontier.subsumed") > 0


class TestCheckpointRoundTrip:
    def test_checkpoint_does_not_store_the_subsumption_set(self):
        # The queued-key set is a pure function of the frontier
        # configurations; pickling it would go stale if the key
        # computation ever changed between checkpoint and resume.
        assert "queued" not in {
            f.name for f in dataclasses.fields(Checkpoint)
        }

    def _interrupt(self, max_configs):
        interp = Interpreter(
            parse_program(DIAMOND), max_configs=max_configs, por=False
        )
        with pytest.raises(SearchBudgetExceeded) as info:
            list(interp.solve("go", Database()))
        assert info.value.checkpoint is not None
        return info.value.checkpoint

    def test_resume_re_derives_subsumption_from_pickled_frontier(self):
        # Interrupt mid-lattice, round-trip the checkpoint through
        # pickle, and finish under instrumentation: the resumed search
        # must still subsume the reconverging schedules, proving the
        # queued set was rebuilt from the configurations.
        checkpoint = pickle.loads(pickle.dumps(self._interrupt(4)))
        inst = Instrumentation.create()
        with instrumented(inst):
            resumed = list(
                Interpreter(
                    parse_program(DIAMOND), por=False
                ).resume(checkpoint)
            )
        assert [s.database for s in resumed] == [parse_database("a. b. c.")]
        assert inst.metrics.counter("frontier.subsumed") > 0

    def test_every_interruption_point_agrees_with_the_full_run(self):
        full = [
            s.database
            for s in Interpreter(
                parse_program(DIAMOND), por=False
            ).solve("go", Database())
        ]
        for cap in range(1, 12):
            checkpoint = pickle.loads(pickle.dumps(self._interrupt(cap)))
            resumed = list(
                Interpreter(
                    parse_program(DIAMOND), por=False
                ).resume(checkpoint)
            )
            assert [s.database for s in resumed] == full, "cap %d" % cap
