"""Program families and drivers behind the complexity benchmarks.

Each family realizes one cell of the paper's complexity map (DESIGN.md
section 3) as a concrete scaling experiment: a generator producing
(program, goal, database) triples parameterized by an input size, plus
measurement helpers shared by the benchmark scripts.
"""

from .families import (
    binary_counter_family,
    diverging_counter_machine,
    chain_edges,
    grid_andor_graph,
    insert_only_closure,
    nonrecursive_path_program,
    transitive_closure_program,
)
from .runner import estimate_growth, measure, print_series

__all__ = [
    "binary_counter_family",
    "chain_edges",
    "diverging_counter_machine",
    "estimate_growth",
    "grid_andor_graph",
    "insert_only_closure",
    "measure",
    "nonrecursive_path_program",
    "print_series",
    "transitive_closure_program",
]
