"""The injector against real searches: drops, outages, adversarial
order, forced exhaustion -- and full determinism of all of it."""

import pytest

from repro import (
    Database,
    DeadlineExceeded,
    Interpreter,
    SearchBudgetExceeded,
    parse_database,
    parse_goal,
    parse_program,
)
from repro.faults import (
    AdversarialOrder,
    AgentOutage,
    Exhaustion,
    FaultInjector,
    FaultPlan,
    StepFault,
    Window,
)


def solve_under(plan, program_text, goal_text, db_text="", **kw):
    interp = Interpreter(
        parse_program(program_text),
        faults=FaultInjector(plan) if plan is not None else None,
        **kw,
    )
    return list(interp.solve(parse_goal(goal_text), parse_database(db_text)))


def canon(solutions):
    return sorted(
        (
            tuple(sorted((str(v), str(t)) for v, t in s.bindings.items())),
            tuple(sorted(str(f) for f in s.database)),
        )
        for s in solutions
    )


class TestStepFaults:
    def test_matching_insert_is_dropped(self):
        plan = FaultPlan(0, step_faults=(StepFault("ins", "p", Window(0, 1000)),))
        assert solve_under(None, "go <- ins.p(a).", "go")
        assert solve_under(plan, "go <- ins.p(a).", "go") == []

    def test_unrelated_predicate_unaffected(self):
        plan = FaultPlan(0, step_faults=(StepFault("ins", "zzz", Window(0, 1000)),))
        assert solve_under(plan, "go <- ins.p(a).", "go")

    def test_window_expiry_reenables_the_step(self):
        # The goal needs several expansions before reaching ins.p, so a
        # window that closes at tick 1 has already expired by then.
        plan = FaultPlan(0, step_faults=(StepFault("ins", "p", Window(0, 1)),))
        program = "go <- q(a) * q(b) * q(c) * ins.p(a)."
        db = "q(a). q(b). q(c)."
        assert solve_under(plan, program, "go", db)

    def test_scan_iso_vetoes_whole_commit(self):
        plan = FaultPlan(
            0,
            step_faults=(
                StepFault("ins", "p", Window(0, 1000), scan_iso=True),
            ),
        )
        program = "go <- iso(ins.p(a) * ins.q(b))."
        assert solve_under(None, program, "go")
        assert solve_under(plan, program, "go") == []


class TestAgentOutage:
    PROGRAM = """
    claim <- available(ana) * del.available(ana) *
             ins.done(x) * ins.available(ana).
    """

    def test_active_outage_blocks_the_claim(self):
        plan = FaultPlan(0, outages=(AgentOutage("ana", Window(0, 1000)),))
        assert solve_under(plan, self.PROGRAM, "claim", "available(ana).") == []

    def test_other_agent_unaffected(self):
        plan = FaultPlan(0, outages=(AgentOutage("raj", Window(0, 1000)),))
        assert solve_under(plan, self.PROGRAM, "claim", "available(ana).")


class TestExhaustion:
    def test_forced_budget_exhaustion(self):
        plan = FaultPlan(0, exhaustion=(Exhaustion(0, "budget"),))
        with pytest.raises(SearchBudgetExceeded) as info:
            solve_under(plan, "go <- ins.p(a).", "go")
        assert info.value.injected
        assert info.value.checkpoint is not None

    def test_forced_deadline_exhaustion(self):
        plan = FaultPlan(0, exhaustion=(Exhaustion(0, "deadline"),))
        with pytest.raises(DeadlineExceeded) as info:
            solve_under(plan, "go <- ins.p(a).", "go")
        assert info.value.injected

    def test_exhaustion_beyond_search_end_is_harmless(self):
        plan = FaultPlan(0, exhaustion=(Exhaustion(10**6, "budget"),))
        assert solve_under(plan, "go <- ins.p(a).", "go")


class TestAdversarialOrder:
    PROGRAM = """
    go <- step(X) * del.step(X) * ins.used(X) * go.
    go <- not step(_).
    """
    DB = "step(a). step(b). step(c)."

    def test_solutions_preserved_under_reorder(self):
        plan = FaultPlan(0, adversarial=(AdversarialOrder(Window(0, None)),))
        plain = solve_under(None, self.PROGRAM, "go", self.DB)
        shaken = solve_under(plan, self.PROGRAM, "go", self.DB)
        assert canon(plain) == canon(shaken)

    def test_reorder_counter_advances(self):
        plan = FaultPlan(0, adversarial=(AdversarialOrder(Window(0, None)),))
        injector = FaultInjector(plan)
        interp = Interpreter(parse_program(self.PROGRAM), faults=injector)
        list(interp.solve(parse_goal("go"), parse_database(self.DB)))
        assert injector.reordered > 0


class TestDeterminism:
    def test_identical_runs_tick_for_tick(self):
        plan = FaultPlan(
            3,
            step_faults=(StepFault("del", "step", Window(2, 9)),),
            adversarial=(AdversarialOrder(Window(0, 6)),),
        )
        results = []
        ticks = []
        for _ in range(2):
            injector = FaultInjector(plan)
            interp = Interpreter(
                parse_program(TestAdversarialOrder.PROGRAM), faults=injector
            )
            results.append(
                canon(
                    interp.solve(
                        parse_goal("go"),
                        parse_database(TestAdversarialOrder.DB),
                    )
                )
            )
            ticks.append((injector.tick, injector.dropped, injector.reordered))
        assert results[0] == results[1]
        assert ticks[0] == ticks[1]

    def test_injector_holds_no_rng(self):
        import repro.faults.inject as inject_mod

        source = open(inject_mod.__file__).read()
        assert "random" not in source
