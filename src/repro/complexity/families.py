"""Scaling families for the complexity experiments.

Every function returns ready-to-run TD artifacts; the benchmark scripts
only choose sizes and measure.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.database import Database
from ..core.formulas import Formula
from ..core.parser import parse_goal, parse_program
from ..core.program import Program
from ..core.terms import atom
from ..machines.andor import AndOrGraph
from ..machines.counter import CounterMachine, Dec, Halt, Inc

__all__ = [
    "binary_counter_family",
    "chain_edges",
    "diverging_counter_machine",
    "grid_andor_graph",
    "insert_only_closure",
    "nonrecursive_path_program",
    "transitive_closure_program",
]


# ---------------------------------------------------------------------------
# C2: sequential TD, EXPTIME -- a binary counter over n database bits
# ---------------------------------------------------------------------------

_BINARY_COUNTER_RULES = """
% Count through all 2^n bit patterns: `count` succeeds after driving the
% set/1 relation from all-clear to all-set by repeated binary increment.
count <- allset.
count <- inc * count.

% Increment: find the lowest clear bit, set it, clear everything below.
inc <- first(F) * findlow(F).
findlow(I) <- not set(I) * ins.set(I) * clearbelow(I).
findlow(I) <- set(I) * next(I, J) * findlow(J).

clearbelow(I) <- first(I).
clearbelow(I) <- next(J, I) * del.set(J) * clearbelow(J).

% All bits set?
allset <- first(F) * allset_from(F).
allset_from(I) <- set(I) * last(I).
allset_from(I) <- set(I) * next(I, J) * allset_from(J).
"""


def binary_counter_family(n_bits: int) -> Tuple[Program, Formula, Database]:
    """Sequential TD program whose execution walks through all ``2^n``
    databases over ``n`` propositional bits.

    The *program* is fixed; only the database (the bit indexes) grows, so
    measured growth is data complexity.  Everything is tail recursion
    with deletion -- inside sequential TD, and in fact fully bounded, but
    with an exponentially long (and exponentially wide) state space:
    exactly Theorem 4.5's regime.
    """
    if n_bits < 1:
        raise ValueError("need at least one bit")
    program = parse_program(_BINARY_COUNTER_RULES)
    facts = [atom("first", 0), atom("last", n_bits - 1)]
    for i in range(n_bits - 1):
        facts.append(atom("next", i, i + 1))
    return program, parse_goal("count"), Database(facts)


# ---------------------------------------------------------------------------
# C1: full TD, RE -- a counter machine that never halts
# ---------------------------------------------------------------------------


def diverging_counter_machine() -> CounterMachine:
    """A machine that increments counter 0 forever.

    Its TD encoding gives the interpreter an infinite configuration
    space: ``succeeds`` must hit its budget (SearchBudgetExceeded), which
    is the operational face of RE-completeness -- failure to halt cannot
    be distinguished from slow acceptance.
    """
    return CounterMachine((
        Inc(0, 0),
    ))


# ---------------------------------------------------------------------------
# C4: nonrecursive TD, polynomial
# ---------------------------------------------------------------------------

_NONREC_PATH_RULES = """
% Fixed nonrecursive program: is there a path of exactly four edges
% starting at a source?  Record one witness endpoint.
path4(X, Y) <- e(X, A) * e(A, B) * e(B, C) * e(C, Y).
witness <- src(X) * path4(X, Y) * ins.found(X, Y).
"""


def nonrecursive_path_program() -> Program:
    return parse_program(_NONREC_PATH_RULES)


def chain_edges(n: int, extra_random: int = 0, seed: int = 0) -> Database:
    """A chain 0 -> 1 -> ... -> n plus optional random chords.

    Marks node 0 as source and node n as sink.
    """
    rng = random.Random(seed)
    facts = [atom("src", 0), atom("snk", n)]
    for i in range(n):
        facts.append(atom("e", i, i + 1))
    for _ in range(extra_random):
        a = rng.randrange(n + 1)
        b = rng.randrange(n + 1)
        facts.append(atom("e", a, b))
    return Database(facts)


# ---------------------------------------------------------------------------
# C5: query-only TD == classical Datalog
# ---------------------------------------------------------------------------

_TC_RULES = """
path(X, Y) <- e(X, Y).
path(X, Y) <- e(X, Z) * path(Z, Y).
"""


def transitive_closure_program() -> Program:
    """Query-only recursive TD: transitive closure, the canonical Datalog
    program.  Evaluated by the tabled sequential engine and by the
    seminaive Datalog engine; experiment C5 checks the answers coincide
    and compares the scaling."""
    return parse_program(_TC_RULES)


# ---------------------------------------------------------------------------
# C6: insert-only TD (the scientific-workflow fragment)
# ---------------------------------------------------------------------------

_INSERT_ONLY_CLOSURE = """
% Materialize reachability into out/2 using only tests and insertions --
% the update discipline of scientific workflows (results accumulate,
% nothing is ever deleted).  `grow` nondeterministically extends the
% materialization one derived fact at a time and may stop at any point;
% `reach(X, Y)` commits iff enough of the closure can be materialized to
% exhibit out(X, Y).
reach(X, Y) <- grow * out(X, Y).
grow <- true.
grow <- e(X, Y) * not out(X, Y) * ins.out(X, Y) * grow.
grow <- out(X, Z) * e(Z, Y) * not out(X, Y) * ins.out(X, Y) * grow.
"""


def insert_only_closure() -> Program:
    """Insert-only materialization of reachability (see rules above).

    The database only grows during execution -- the monotone regime
    where the paper notes Datalog optimizations apply.  Ask
    ``reach(a, b)`` to decide reachability.
    """
    return parse_program(_INSERT_ONLY_CLOSURE)


# ---------------------------------------------------------------------------
# C2 cross-check: AND/OR game graphs
# ---------------------------------------------------------------------------


def grid_andor_graph(depth: int, fanout: int = 2, seed: int = 0) -> AndOrGraph:
    """A layered AND/OR DAG of the given depth: alternating AND and OR
    layers, random edges to the next layer, axioms at the bottom.

    Solvable instances of growing depth exercise the alternation pattern
    behind sequential TD's EXPTIME-hardness.
    """
    rng = random.Random(seed)
    kind = {}
    successors = {}
    layer_nodes: List[List[str]] = []
    for d in range(depth):
        layer_nodes.append(["n%d_%d" % (d, i) for i in range(fanout)])
    axioms = frozenset("leaf%d" % i for i in range(fanout))
    for d, nodes in enumerate(layer_nodes):
        for name in nodes:
            kind[name] = "and" if d % 2 == 0 else "or"
            if d + 1 < depth:
                pool = layer_nodes[d + 1]
            else:
                pool = sorted(axioms)
            k = rng.randint(1, len(pool))
            successors[name] = tuple(rng.sample(pool, k))
    return AndOrGraph(kind=kind, successors=successors, axioms=axioms)
