"""Unit tests for the concrete syntax."""

import pytest

from repro.core.formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    Truth,
)
from repro.core.parser import (
    ParseError,
    parse_atom,
    parse_database,
    parse_goal,
    parse_program,
    parse_rules,
)
from repro.core.terms import Atom, Constant, Variable, atom


class TestAtomsAndTerms:
    def test_simple_atom(self):
        assert parse_atom("p(a, b)") == atom("p", "a", "b")

    def test_propositional(self):
        assert parse_atom("halt") == atom("halt")

    def test_variables_uppercase(self):
        a = parse_atom("p(X, abc)")
        assert a.args[0] == Variable("X")
        assert a.args[1] == Constant("abc")

    def test_integers(self):
        assert parse_atom("p(42)") == atom("p", 42)

    def test_underscore_prefix_is_variable(self):
        a = parse_atom("p(_thing)")
        assert isinstance(a.args[0], Variable)

    def test_anonymous_variables_fresh(self):
        goal = parse_goal("p(_, _)")
        args = goal.atom.args
        assert args[0] != args[1]


class TestGoals:
    def test_sequential(self):
        g = parse_goal("p(X) * q(X)")
        assert isinstance(g, Seq)
        assert len(g.parts) == 2

    def test_comma_is_seq(self):
        assert parse_goal("p * q") == parse_goal("p , q")

    def test_unicode_otimes(self):
        assert parse_goal("p ⊗ q") == parse_goal("p * q")

    def test_concurrent_lower_precedence(self):
        g = parse_goal("a * b | c * d")
        assert isinstance(g, Conc)
        assert all(isinstance(p, Seq) for p in g.parts)

    def test_parentheses(self):
        g = parse_goal("a * (b | c)")
        assert isinstance(g, Seq)
        assert isinstance(g.parts[1], Conc)

    def test_updates(self):
        g = parse_goal("ins.p(a) * del.q(X)")
        assert g.parts[0] == Ins(atom("p", "a"))
        assert isinstance(g.parts[1], Del)

    def test_negation(self):
        g = parse_goal("not p(X)")
        assert isinstance(g, Neg)

    def test_iso(self):
        g = parse_goal("iso(p * q)")
        assert isinstance(g, Isol)
        assert isinstance(g.body, Seq)

    def test_true(self):
        assert isinstance(parse_goal("true"), Truth)

    def test_query_prefix(self):
        assert parse_goal("?- p(X).") == parse_goal("p(X)")

    def test_builtin_comparison(self):
        g = parse_goal("X > 3")
        assert g == Builtin(">", Variable("X"), Constant(3))

    def test_builtin_is_with_arith(self):
        g = parse_goal("Y is X - 1")
        assert isinstance(g, Builtin)
        assert g.op == "is"

    def test_builtin_between_seq_parts(self):
        g = parse_goal("bal(B) * B >= 10 * ins.ok")
        assert len(g.parts) == 3
        assert isinstance(g.parts[1], Builtin)

    def test_constant_comparison(self):
        g = parse_goal("a != b")
        assert g == Builtin("!=", Constant("a"), Constant("b"))

    def test_negative_literal_arith(self):
        g = parse_goal("X > -1")
        assert isinstance(g, Builtin)


class TestRulesAndPrograms:
    def test_fact_rule(self):
        (rule,) = parse_rules("p(a).")
        assert rule.head == atom("p", "a")
        assert isinstance(rule.body, Truth)

    def test_rule_with_body(self):
        (rule,) = parse_rules("p(X) <- q(X) * ins.r(X).")
        assert rule.head.pred == "p"
        assert isinstance(rule.body, Seq)

    def test_classic_arrow(self):
        assert parse_rules("p <- q.") == parse_rules("p :- q.")

    def test_comments_ignored(self):
        rules = parse_rules("% header\np <- q. % trailing\n% done\n")
        assert len(rules) == 1

    def test_base_directive(self):
        prog = parse_program("#base stock/2.\ncheck <- stock(X, N).")
        assert ("stock", 2) in [("stock", 2)]
        assert prog.schema.signatures() == (("stock", 2),)

    def test_base_calls_resolve_to_tests(self):
        prog = parse_program("p(X) <- q(X).")
        (rule,) = prog.rules
        assert isinstance(rule.body, Test)

    def test_derived_calls_stay_calls(self):
        prog = parse_program("p(X) <- q(X).\nq(X) <- r(X).")
        rule = prog.rules_for(("p", 1))[0]
        assert isinstance(rule.body, Call)

    def test_multiple_rules_same_head(self):
        prog = parse_program("p <- q.\np <- r.")
        assert len(prog.rules_for(("p", 0))) == 2


class TestDatabaseText:
    def test_parse_database(self):
        db = parse_database("p(a). q(b, c). flag.")
        assert atom("p", "a") in db
        assert atom("q", "b", "c") in db
        assert atom("flag") in db

    def test_rejects_nonground(self):
        with pytest.raises(ParseError):
            parse_database("p(X).")

    def test_empty(self):
        assert len(parse_database("")) == 0


class TestErrors:
    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_goal("p( &")
        assert err.value.line == 1
        assert err.value.column >= 3

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rules("p <- q")

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_program("#frobnicate p/1.")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_goal("p * ")

    def test_ins_requires_atom(self):
        with pytest.raises(ParseError):
            parse_goal("ins.(p)")

    def test_base_directive_rejected_in_fragments(self):
        with pytest.raises(ValueError):
            parse_rules("#base p/1.")


class TestLexerEdgeCases:
    def test_ins_as_plain_identifier(self):
        # `ins` not followed by `.name` is an ordinary constant/predicate.
        g = parse_goal("p(ins)")
        assert g == Call(atom("p", "ins"))

    def test_rule_ending_directly_after_ins_name(self):
        # "q <- ins.p." the final dot terminates the rule.
        (rule,) = parse_rules("q <- ins.p.")
        assert rule.body == Ins(atom("p"))
