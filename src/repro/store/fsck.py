"""Offline verifier and repair tool for ``.tdlog`` stores.

``tdlog store fsck PATH`` runs every check below against a store *at
rest* (the file is opened read-only; ``--repair`` takes the writer
lease first, so a live writer is never raced):

``meta``
    The ``meta`` table exists and is coherent: ``schema_version``
    matches, ``generation``/``checkpoint_seq`` are present and
    non-negative, ``snapshot_digest`` exists.
``snapshot``
    Every snapshot row's frame verifies (magic, version, length, CRC32)
    and unpickles to a ground atom, and the set's content digest equals
    the recorded ``snapshot_digest`` -- the replay-to-content-hash
    check: the bytes still mean what the checkpoint said they meant.
``wal``
    Every WAL row past ``checkpoint_seq`` frame-verifies and carries a
    known op.  A torn *final* record is flagged as a repairable
    truncated tail (the signature of an interrupted append); damage
    anywhere else marks the rows from the first bad one onward as a
    repairable damaged tail -- repair rolls back to the last good
    prefix, which is the strongest state the log can still prove.
``lease``
    The writer-lease sidecar either names no holder, a dead/stale
    holder (reported, harmless at rest), or a live one -- in which case
    the store is *in use* and fsck's findings are advisory.  A store at
    rest by construction has an empty savepoint stack: SQLite rolls
    uncommitted scopes back with their connection, so this check plus a
    clean replay is the savepoint-emptiness audit.
``replay``
    The surviving WAL prefix replays over the snapshot without error;
    the resulting fact count is reported.

``--repair`` quarantines the damaged/torn WAL tail into a
``PATH.quarantine`` sidecar (JSON lines carrying the raw bytes in hex,
so nothing is destroyed) and deletes those rows, leaving a store that
opens cleanly at the last provable state.  Snapshot damage is *not*
repairable -- the checkpoint that wrote it already folded the history
that could have restored it -- and is reported as such.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.database import Database
from .base import StoreCorrupt, StoreError
from .lease import read_lease
from .sqlite import (
    QUARANTINE_SUFFIX,
    SCHEMA_VERSION,
    TornRecord,
    content_digest,
    decode_record,
)

__all__ = ["FsckIssue", "FsckReport", "fsck", "format_fsck"]

_META_KEYS = ("schema_version", "generation", "checkpoint_seq", "snapshot_digest")


@dataclass
class FsckIssue:
    """One finding: which check tripped, where, and whether ``--repair``
    can roll the store back past it."""

    check: str
    table: str
    rowid: Optional[int]
    reason: str
    repairable: bool = False

    def describe(self) -> str:
        where = self.table if self.rowid is None else (
            "%s row %s" % (self.table, self.rowid)
        )
        tag = " [repairable]" if self.repairable else ""
        return "%s: %s: %s%s" % (self.check, where, self.reason, tag)


@dataclass
class FsckReport:
    path: str
    checks: List[str] = field(default_factory=list)
    issues: List[FsckIssue] = field(default_factory=list)
    repaired: List[str] = field(default_factory=list)
    facts: Optional[int] = None
    wal_rows: Optional[int] = None
    lease: Optional[dict] = None
    quarantine: bool = False

    @property
    def ok(self) -> bool:
        return not self.issues

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "checks": list(self.checks),
            "issues": [
                {
                    "check": issue.check,
                    "table": issue.table,
                    "rowid": issue.rowid,
                    "reason": issue.reason,
                    "repairable": issue.repairable,
                }
                for issue in self.issues
            ],
            "repaired": list(self.repaired),
            "facts": self.facts,
            "wal_rows": self.wal_rows,
            "lease": self.lease,
            "quarantine": self.quarantine,
        }


def _issue(report: FsckReport, **kw) -> FsckIssue:
    found = FsckIssue(**kw)
    report.issues.append(found)
    return found


def fsck(path: str, *, repair: bool = False) -> FsckReport:
    """Run the full check suite against *path*; with *repair*, also
    quarantine a damaged/torn WAL tail.  Never raises for damage it can
    describe -- the report carries the findings; only an unopenable or
    missing file raises :class:`StoreError`."""
    report = FsckReport(path=path)
    if not os.path.exists(path):
        raise StoreError("%s: no such store" % path)
    report.quarantine = os.path.exists(path + QUARANTINE_SUFFIX)
    report.lease = read_lease(path)
    try:
        conn = sqlite3.connect("file:%s?mode=ro" % path, uri=True,
                               isolation_level=None)
        conn.execute("SELECT 1 FROM sqlite_master LIMIT 1").fetchone()
    except sqlite3.Error as exc:
        raise StoreError("%s: cannot open: %s" % (path, exc))
    try:
        _check_meta(report, conn)
        snapshot_facts = _check_snapshot(report, conn)
        good_prefix, bad_tail_from = _check_wal(report, conn)
        _check_lease(report)
        _check_replay(report, snapshot_facts, good_prefix)
    finally:
        conn.close()
    if repair and bad_tail_from is not None:
        _repair_tail(report, bad_tail_from)
    return report


def _tables(conn) -> set:
    return {
        row[0]
        for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        )
    }


def _check_meta(report: FsckReport, conn) -> None:
    report.checks.append("meta")
    missing_tables = {"meta", "snapshot", "wal"} - _tables(conn)
    if missing_tables:
        _issue(report, check="meta", table="file", rowid=None,
               reason="missing table(s): %s" % ", ".join(sorted(missing_tables)))
        return
    meta = dict(conn.execute("SELECT key, value FROM meta"))
    for key in _META_KEYS:
        if key not in meta:
            _issue(report, check="meta", table="meta", rowid=None,
                   reason="missing key %r" % key)
    version = meta.get("schema_version")
    if version is not None and version != SCHEMA_VERSION:
        _issue(report, check="meta", table="meta", rowid=None,
               reason="schema version %s, expected %d" % (version, SCHEMA_VERSION))
    for key in ("generation", "checkpoint_seq"):
        value = meta.get(key)
        if value is not None and (not isinstance(value, int) or value < 0):
            _issue(report, check="meta", table="meta", rowid=None,
                   reason="%s is %r, expected a non-negative integer" % (key, value))


def _check_snapshot(report: FsckReport, conn):
    report.checks.append("snapshot")
    if "snapshot" not in _tables(conn) or "meta" not in _tables(conn):
        return None
    facts = []
    damaged = False
    for rowid, blob in conn.execute("SELECT rowid, fact FROM snapshot"):
        try:
            facts.append(
                decode_record(blob, path=report.path, table="snapshot",
                              rowid=rowid)
            )
        except TornRecord as torn:
            # Snapshots are rewritten transactionally; a torn row here
            # is damage, and nothing older survives to roll back to.
            damaged = True
            _issue(report, check="snapshot", table="snapshot", rowid=rowid,
                   reason=torn.reason)
        except StoreCorrupt as exc:
            damaged = True
            _issue(report, check="snapshot", table="snapshot", rowid=exc.rowid,
                   reason=exc.reason)
    if damaged:
        return None
    recorded = conn.execute(
        "SELECT value FROM meta WHERE key='snapshot_digest'"
    ).fetchone()
    if recorded is not None and content_digest(facts) != recorded[0]:
        _issue(report, check="snapshot", table="meta", rowid=None,
               reason="snapshot content digest mismatch (recorded %d)"
                      % recorded[0])
        return None
    return facts


def _check_wal(report: FsckReport, conn):
    """Scan the WAL tail; returns ``(good_prefix_rows, bad_tail_from)``
    where the prefix is a list of ``(seq, op, fact)`` and
    ``bad_tail_from`` is the first seq repair should quarantine (or
    ``None`` when the log is clean)."""
    report.checks.append("wal")
    if "wal" not in _tables(conn) or "meta" not in _tables(conn):
        return [], None
    row = conn.execute(
        "SELECT value FROM meta WHERE key='checkpoint_seq'"
    ).fetchone()
    checkpoint_seq = row[0] if row and isinstance(row[0], int) else 0
    rows = list(conn.execute(
        "SELECT seq, op, fact FROM wal WHERE seq > ? ORDER BY seq",
        (checkpoint_seq,),
    ))
    report.wal_rows = len(rows)
    prefix = []
    bad_tail_from: Optional[int] = None
    for index, (seq, op, blob) in enumerate(rows):
        try:
            fact = decode_record(blob, path=report.path, table="wal", rowid=seq)
            if op not in ("+", "-"):
                raise StoreCorrupt(report.path, "wal", seq,
                                   "unknown op %r" % op)
        except TornRecord as torn:
            final = index == len(rows) - 1
            _issue(report, check="wal", table="wal", rowid=seq,
                   reason=("truncated tail: %s" % torn.reason) if final
                   else ("torn record before end of log: %s" % torn.reason),
                   repairable=True)
            bad_tail_from = seq
            break
        except StoreCorrupt as exc:
            _issue(report, check="wal", table="wal", rowid=exc.rowid,
                   reason=exc.reason, repairable=True)
            bad_tail_from = seq
            break
        prefix.append((seq, op, fact))
    return prefix, bad_tail_from


def _check_lease(report: FsckReport) -> None:
    report.checks.append("lease")
    holder = report.lease
    if holder is None:
        return
    pid = holder.get("pid")
    try:
        alive = isinstance(pid, int) and pid > 0 and _pid_alive(pid)
    except Exception:  # pragma: no cover - defensive
        alive = False
    if alive:
        _issue(report, check="lease", table="lease", rowid=None,
               reason="writer lease held by live pid %s -- store is in "
                      "use, findings are advisory" % pid)
    # A dead holder's record is harmless (flock died with the process);
    # report it via the lease field, not as an issue.


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - exists, other user
        return True
    return True


def _check_replay(report: FsckReport, snapshot_facts, good_prefix) -> None:
    report.checks.append("replay")
    if snapshot_facts is None:
        _issue(report, check="replay", table="snapshot", rowid=None,
               reason="skipped: snapshot unreadable")
        return
    db = Database(snapshot_facts)
    for seq, op, fact in good_prefix or ():
        db = db.insert(fact) if op == "+" else db.delete(fact)
    report.facts = len(db)


def _repair_tail(report: FsckReport, bad_tail_from: int) -> None:
    """Quarantine WAL rows from *bad_tail_from* onward into the
    ``.quarantine`` sidecar (hex-encoded, append-mode JSON lines -- the
    bytes are preserved, not destroyed) and delete them from the log."""
    from .lease import WriterLease

    lease = WriterLease(report.path)
    lease.acquire()  # raises StoreBusy if a live writer holds the store
    try:
        conn = sqlite3.connect(report.path, isolation_level=None)
        try:
            rows = list(conn.execute(
                "SELECT seq, op, pred, fact FROM wal WHERE seq >= ? ORDER BY seq",
                (bad_tail_from,),
            ))
            with open(report.path + QUARANTINE_SUFFIX, "a") as sidecar:
                for seq, op, pred, blob in rows:
                    sidecar.write(json.dumps({
                        "table": "wal",
                        "seq": seq,
                        "op": op,
                        "pred": pred,
                        "fact_hex": bytes(blob).hex(),
                    }, sort_keys=True) + "\n")
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM wal WHERE seq >= ?", (bad_tail_from,))
            conn.execute("COMMIT")
        finally:
            conn.close()
    finally:
        lease.release()
    report.quarantine = True
    report.repaired.append(
        "quarantined %d wal row(s) from seq %d" % (len(rows), bad_tail_from)
    )


def format_fsck(report: FsckReport) -> str:
    """Human-readable fsck report (the CLI's non-``--json`` output)."""
    lines = ["fsck %s" % report.path]
    status = "clean" if report.ok else (
        "%d issue(s)" % len(report.issues)
    )
    lines.append("  status: %s" % status)
    lines.append("  checks: %s" % ", ".join(report.checks))
    if report.facts is not None:
        lines.append("  facts after replay: %d" % report.facts)
    if report.wal_rows is not None:
        lines.append("  wal tail rows: %d" % report.wal_rows)
    if report.lease is not None:
        lines.append(
            "  lease: pid %s generation %s"
            % (report.lease.get("pid"), report.lease.get("generation"))
        )
    else:
        lines.append("  lease: free")
    lines.append("  quarantine sidecar: %s"
                 % ("present" if report.quarantine else "none"))
    for issue in report.issues:
        lines.append("  issue: %s" % issue.describe())
    for action in report.repaired:
        lines.append("  repaired: %s" % action)
    return "\n".join(lines)
