"""Backend differential over the full baseline profile suite.

The gate for the durable path: every workload the committed counter
baselines cover (all seven -- one per engine family, see
``repro.obs.analyze.profile_suite``) is run three ways -- no store, an
ambient per-solve :class:`MemoryStore`, an ambient per-solve
:class:`SqliteStore` -- and the deterministic metrics must agree
exactly once the purely additive ``store.*`` counters are stripped.
That is the precise sense in which durability is a no-op for the
semantics: same searches, same expansions, same answers, byte-identical
counters.
"""

import itertools

import pytest

from repro import Database, MemoryStore, SqliteStore
from repro.obs.analyze import profile_suite
from repro.obs.context import Instrumentation, instrumented
from repro.store import using_store_provider


class MintingProvider:
    """Hand every consulting engine a *fresh* store seeded from its
    initial database (one durable file per solve for sqlite)."""

    def __init__(self, factory):
        self.factory = factory
        self.stores = []

    def provide(self, db):
        store = self.factory(db)
        self.stores.append(store)
        return store

    def close(self):
        for store in self.stores:
            try:
                store.close()
            except Exception:
                pass


def _capture(config, provider):
    inst = Instrumentation.create()
    try:
        with instrumented(inst):
            if provider is None:
                config.run()
            else:
                with using_store_provider(provider):
                    config.run()
    finally:
        if provider is not None:
            provider.close()
    return inst.metrics.snapshot(include_timers=False)


def _semantic(snapshot):
    """The deterministic slice a storage backend must not perturb."""
    return {
        "counters": {
            k: v
            for k, v in snapshot["counters"].items()
            if not k.startswith("store.")
        },
        "gauges": snapshot["gauges"],
        "info": snapshot["info"],
    }


def _mem_factory(db):
    return MemoryStore(db if db is not None else Database())


def _sqlite_factory(tmp_path, counter=itertools.count()):
    def factory(db):
        store = SqliteStore(str(tmp_path / ("solve%d.tdlog" % next(counter))))
        if db is not None:
            store.insert_all(db)
        return store

    return factory


@pytest.mark.parametrize(
    "config", profile_suite(), ids=lambda c: c.name
)
def test_backends_agree_on_semantic_counters(config, tmp_path):
    plain = _capture(config, None)
    mem = _capture(config, MintingProvider(_mem_factory))
    sqlite = _capture(config, MintingProvider(_sqlite_factory(tmp_path)))
    assert _semantic(mem) == _semantic(plain)
    assert _semantic(sqlite) == _semantic(plain)


def test_suite_is_the_full_baseline_set():
    # The differential covers every committed baseline config; if the
    # suite grows, this test makes the new workload run differentially.
    assert {c.name for c in profile_suite()} == {
        "bank_transfer",
        "path_tabled",
        "genome_simulate",
        "genome_statespace",
        "lab_workflow_batch3",
        "conc_fanout",
        "recursive_workflow",
        "chaos_faults",
    }
