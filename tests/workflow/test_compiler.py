"""Tests for the workflow -> TD compiler."""

import pytest

from repro import Sublanguage, analyze
from repro.core.formulas import Call, Conc, Neg, Seq, Test, walk_formulas
from repro.workflow import (
    Agent,
    Choice,
    Consume,
    Emit,
    Iterate,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WorkflowSpec,
    compile_workflows,
)
from repro.workflow.compiler import agent_facts, task_predicate, workflow_predicate


def compile_one(body, tasks=()):
    return compile_workflows([WorkflowSpec("wf", body, tuple(tasks))])


class TestStructure:
    def test_workflow_predicate_generated(self):
        prog = compile_one(Step("a"), [Task("a")])
        assert prog.is_derived((workflow_predicate("wf"), 1))
        assert prog.is_derived((task_predicate("a"), 1))

    def test_seq_compiles_to_seq(self):
        prog = compile_one(SeqFlow(Step("a"), Step("b")), [Task("a"), Task("b")])
        rule = prog.rules_for(("wf_wf", 1))[0]
        assert isinstance(rule.body, Seq)

    def test_par_compiles_to_conc(self):
        prog = compile_one(ParFlow(Step("a"), Step("b")), [Task("a"), Task("b")])
        rule = prog.rules_for(("wf_wf", 1))[0]
        assert isinstance(rule.body, Conc)

    def test_choice_generates_one_rule_per_branch(self):
        prog = compile_one(Choice(Step("a"), Step("b")), [Task("a"), Task("b")])
        choice_sigs = [s for s in prog.derived_signatures() if "choice" in s[0]]
        assert len(choice_sigs) == 1
        assert len(prog.rules_for(choice_sigs[0])) == 2

    def test_iterate_generates_guarded_loop(self):
        prog = compile_one(Iterate(Step("a"), until="ok"), [Task("a")])
        iter_sigs = [s for s in prog.derived_signatures() if "iter" in s[0]]
        (sig,) = iter_sigs
        rules = prog.rules_for(sig)
        assert len(rules) == 2
        # one stop rule testing the flag, one guarded body rule
        bodies = [r.body for r in rules]
        assert any(isinstance(b, Test) for b in bodies)
        assert any(
            any(isinstance(f, Neg) for f in walk_formulas(b)) for b in bodies
        )

    def test_subflow_compiles_to_call(self):
        sub = WorkflowSpec("sub", Step("a"), (Task("a"),))
        main = WorkflowSpec("main", Subflow("sub"), ())
        prog = compile_workflows([main, sub])
        rule = prog.rules_for(("wf_main", 1))[0]
        assert rule.body == Call(rule.body.atom)
        assert rule.body.atom.pred == "wf_sub"


class TestTaskRules:
    def test_role_task_acquires_and_releases_agent(self):
        prog = compile_one(Step("a"), [Task("a", role="tech")])
        (rule,) = prog.rules_for(("task_a", 1))
        text = str(rule.body)
        assert text.index("available(A)") < text.index("del.available(A)")
        assert text.index("del.available(A)") < text.index("ins.done(a, W, A)")
        assert text.index("ins.done") < text.index("ins.available(A)")
        assert "qualified(A, tech)" in text

    def test_automated_task_attributed_to_auto(self):
        prog = compile_one(Step("a"), [Task("a")])
        (rule,) = prog.rules_for(("task_a", 1))
        assert "done(a, W, auto)" in str(rule.body)

    def test_conflicting_task_declarations_rejected(self):
        s1 = WorkflowSpec("w1", Step("a"), (Task("a", role="x"),))
        s2 = WorkflowSpec("w2", Step("a"), (Task("a", role="y"),))
        with pytest.raises(ValueError):
            compile_workflows([s1, s2])

    def test_duplicate_workflow_names_rejected(self):
        s = WorkflowSpec("w", Step("a"), (Task("a"),))
        with pytest.raises(ValueError):
            compile_workflows([s, s])


class TestClassification:
    def test_straightline_workflow_is_nonrecursive(self):
        prog = compile_one(
            SeqFlow(Step("a"), ParFlow(Step("b"), Step("c"))),
            [Task(n) for n in "abc"],
        )
        a = analyze(prog)
        assert not a.recursive

    def test_iterate_is_fully_bounded(self):
        prog = compile_one(
            SeqFlow(Step("a"), Iterate(SeqFlow(Step("b"), Emit("ok")), until="ok")),
            [Task("a"), Task("b")],
        )
        assert analyze(prog).fully_bounded


class TestAgentFacts:
    def test_agent_facts(self):
        facts = agent_facts([Agent("alice", ("tech", "reader")), Agent("rig")])
        strs = {str(f) for f in facts}
        assert "available(alice)" in strs
        assert "qualified(alice, tech)" in strs
        assert "qualified(alice, reader)" in strs
        assert "available(rig)" in strs
        assert len([s for s in strs if s.startswith("qualified(rig")]) == 0
