"""Durable store over stdlib ``sqlite3``: an append-only WAL of fact
deltas plus periodic snapshots.

Layout of a ``.tdlog`` file (three tables, schema version in ``meta``):

``meta(key, value)``
    ``schema_version``, ``generation`` (bumped per snapshot),
    ``checkpoint_seq`` (highest WAL sequence folded into the snapshot),
    ``snapshot_digest`` (order-independent content digest of the
    snapshot, verified by ``tdlog store fsck``).
``snapshot(pred, fact)``
    The state as of the last checkpoint, one framed+pickled ground atom
    per row (atoms carry ``__reduce__`` and re-intern on load; text
    round-trips are unsafe because ``Constant("1")`` and ``Constant(1)``
    render identically).
``wal(seq, op, pred, fact)``
    The delta log: ``+``/``-`` rows appended by every effective
    insert/delete since the checkpoint, in commit order.

Every ``fact`` blob is *framed*: a fixed header (magic, record version,
payload length, CRC32 of the payload) precedes the pickle.  Recovery
verifies each frame before unpickling, which is what separates a
"replayable tail" from "damage": a torn **final** WAL record (payload
shorter than its declared length -- the signature of an interrupted
write) is truncated with a ``store.wal_truncated`` counter, while any
other mismatch -- bad magic, bad CRC, mid-log tears, unpicklable
payloads -- raises a structured :class:`~repro.store.base.StoreCorrupt`
carrying the offending rowid, never a raw pickle traceback.

The live state is a plain in-memory mirror
:class:`~repro.core.database.Database`, so queries, memo keys, and the
per-position indexes behave *identically* to the volatile backend --
durability is purely additive.  Every effective update appends a WAL
row first (``synchronous=FULL``: the row is on disk before the mirror
moves), which gives the recovery invariant: **state = snapshot +
replayed WAL tail**, no matter where the process died.

``iso`` maps onto SQL savepoints: the connection runs in autocommit, so
``SAVEPOINT`` opens a transaction scope whose WAL appends become
durable only on ``RELEASE``; ``ROLLBACK TO`` -- or a crash before the
release -- erases them, which is exactly the paper's
failed-subexecutions-leave-no-trace rule.  Checkpoints fold the WAL
into a fresh snapshot in one SQL transaction, and only run when no
savepoint is open (a checkpoint must not capture uncommitted state); a
threshold that trips inside a scope defers (``store.checkpoint_deferred``)
and retries as soon as the savepoint stack drains.

Multi-process discipline: a writable open takes the cross-process
writer lease (``PATH.lease``, see :mod:`repro.store.lease`) so two
writers cannot interleave WAL appends; ``readonly=True`` skips the
lease, opens the SQLite file in read-only mode, and *degrades* instead
of raising on damaged bytes -- replay stops at the first bad record and
``stats()["degraded"]`` says why, so an operator can always inspect a
damaged store.  ``SQLITE_BUSY`` from concurrent access is retried with
capped exponential backoff (injectable clock/sleep,
``store.busy_retries`` counter).

Crash injection mirrors the rest of the faults layer: the store
duck-types a plan's ``store_crashes`` entries against its own event
counters and raises :class:`~repro.store.base.StoreCrashed` at the
scripted moment.  Four named crash points are supported (see
:class:`repro.faults.plan.StoreCrash`): ``pre-fsync`` (row never
written), ``post-fsync`` (row durable, mirror not updated),
``mid-checkpoint-fold`` (inside the snapshot rewrite transaction) and
``mid-savepoint-release`` (scope popped, SQL RELEASE never executed).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import struct
import time
import zlib
from typing import Callable, Iterable, List, Optional, Tuple

from ..core.database import Database
from ..core.terms import Atom
from ..obs.context import active
from .base import Savepoint, Store, StoreBusy, StoreCorrupt, StoreCrashed, StoreError
from .lease import DEFAULT_LEASE_TTL, WriterLease, read_lease

__all__ = [
    "SqliteStore",
    "SCHEMA_VERSION",
    "RECORD_VERSION",
    "DEFAULT_SNAPSHOT_EVERY",
    "QUARANTINE_SUFFIX",
    "frame_record",
    "decode_record",
    "TornRecord",
    "content_digest",
]

#: Bumped from 1 in PR 9: fact blobs gained the CRC32 frame and ``meta``
#: gained ``snapshot_digest``.  Version-1 files predate checksums and
#: are refused (there is no way to verify their bytes).
SCHEMA_VERSION = 2

#: Version of the record frame itself, carried in every blob header.
RECORD_VERSION = 1

#: Checkpoint once the WAL tail reaches this many rows (tunable per
#: store; small enough that recovery replay stays short, large enough
#: that snapshot rewrites stay rare).
DEFAULT_SNAPSHOT_EVERY = 256

#: Sidecar file ``tdlog store fsck --repair`` quarantines damaged WAL
#: rows into.
QUARANTINE_SUFFIX = ".quarantine"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    pred TEXT NOT NULL,
    fact BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS wal (
    seq  INTEGER PRIMARY KEY AUTOINCREMENT,
    op   TEXT NOT NULL CHECK (op IN ('+', '-')),
    pred TEXT NOT NULL,
    fact BLOB NOT NULL
);
"""

# -- record framing -----------------------------------------------------------

#: magic (2 bytes), record version (1), pad (1), payload length (4),
#: CRC32 of the payload (4) -- little-endian, 12 bytes total.
_HEADER = struct.Struct("<HBxII")
_MAGIC = 0x7D10


class TornRecord(Exception):
    """Internal: a record whose payload is shorter than its declared
    length -- the signature of an interrupted append.  Only acceptable
    as the *final* WAL record (truncated tail); anywhere else it is
    promoted to :class:`StoreCorrupt`."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def frame_record(fact: Atom) -> bytes:
    """Pickle *fact* and prepend the checksummed frame header."""
    payload = pickle.dumps(fact, protocol=4)
    return _HEADER.pack(
        _MAGIC, RECORD_VERSION, len(payload), zlib.crc32(payload)
    ) + payload


def decode_record(blob: bytes, *, path: str, table: str, rowid) -> Atom:
    """Verify and unpickle one framed record.

    Raises :class:`TornRecord` for a short payload (interrupted write)
    and :class:`StoreCorrupt` for everything else -- bad magic, bad
    record version, CRC mismatch, trailing garbage, or a payload that
    does not unpickle to an :class:`Atom`.
    """
    if len(blob) < _HEADER.size:
        raise TornRecord("record shorter than its %d-byte header" % _HEADER.size)
    magic, version, length, crc = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise StoreCorrupt(path, table, rowid, "bad record magic 0x%04x" % magic)
    if version != RECORD_VERSION:
        raise StoreCorrupt(
            path, table, rowid,
            "record version %d, expected %d" % (version, RECORD_VERSION),
        )
    payload = blob[_HEADER.size:]
    if len(payload) < length:
        raise TornRecord(
            "payload %d byte(s), header declares %d" % (len(payload), length)
        )
    if len(payload) > length:
        raise StoreCorrupt(
            path, table, rowid,
            "payload %d byte(s), header declares %d (trailing garbage)"
            % (len(payload), length),
        )
    if zlib.crc32(payload) != crc:
        raise StoreCorrupt(path, table, rowid, "CRC32 mismatch")
    try:
        fact = pickle.loads(payload)
    except Exception as exc:  # guarded decode: never a raw traceback
        raise StoreCorrupt(
            path, table, rowid, "payload does not unpickle: %s" % exc
        )
    if not isinstance(fact, Atom):
        raise StoreCorrupt(
            path, table, rowid,
            "payload is %s, expected a ground atom" % type(fact).__name__,
        )
    return fact


def content_digest(facts: Iterable[Atom]) -> int:
    """Order-independent 63-bit content digest of a fact set.

    Stable across processes and ``PYTHONHASHSEED`` (unlike
    ``hash(Database)``): each fact is pickled (deterministic for
    interned atoms), the per-fact SHA-256 digests are sorted, and the
    first 8 bytes of the combined hash are truncated to fit ``meta``'s
    INTEGER column.
    """
    parts = sorted(
        hashlib.sha256(pickle.dumps(fact, protocol=4)).digest() for fact in facts
    )
    combined = hashlib.sha256(b"".join(parts)).digest()
    return int.from_bytes(combined[:8], "big") & 0x7FFFFFFFFFFFFFFF


# -- the store ----------------------------------------------------------------


class SqliteStore(Store):
    """WAL-durable backend; see the module docstring for the design.

    ``faults=`` accepts anything with a ``store_crashes`` attribute of
    :class:`~repro.faults.plan.StoreCrash`-shaped entries (the store
    never imports the faults package, matching the core's discipline).
    ``readonly=True`` opens degraded-tolerant and without the writer
    lease; ``clock``/``sleep`` are injectable for deterministic lease
    and backoff tests.
    """

    def __init__(
        self,
        path: str,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        faults=None,
        readonly: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        busy_retries: int = 5,
        busy_backoff: float = 0.01,
        busy_cap: float = 0.5,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.path = path
        self.snapshot_every = snapshot_every
        self.readonly = readonly
        self.degraded: Optional[str] = None
        self._busy_retries = busy_retries
        self._busy_backoff = busy_backoff
        self._busy_cap = busy_cap
        self._clock = clock
        self._sleep = sleep
        self._crash_points = tuple(
            (getattr(crash, "point", "post-fsync"), crash.window)
            for crash in getattr(faults, "store_crashes", ())
        )
        self._appends = 0  # crash-injection ticks, one counter per point family
        self._checkpoints = 0
        self._released = 0
        self._crashed = False
        self._closed = False
        self._checkpoint_deferred = False
        # (savepoint, db-as-of-open, wal-buffer mark).  The mark is the
        # buffer length when the scope opened, so rollback can discard
        # exactly the rows the scope staged.
        self._stack: List[Tuple[Savepoint, Database, int]] = []
        # WAL rows staged by open savepoints, flushed in one
        # ``executemany`` when the outermost scope releases (one fsync
        # per trace commit instead of one per fact delta).
        self._wal_buffer: List[Tuple[str, str, bytes]] = []
        self._serial = 0
        self._lease: Optional[WriterLease] = None
        if readonly:
            if not os.path.exists(path):
                raise StoreError("%s: no such store (read-only open)" % path)
            try:
                self._conn = sqlite3.connect(
                    "file:%s?mode=ro" % path, uri=True, isolation_level=None,
                    timeout=0,
                )
            except sqlite3.Error as exc:
                raise StoreError("%s: cannot open read-only: %s" % (path, exc))
        else:
            self._lease = WriterLease(path, ttl=lease_ttl, clock=clock)
            self._lease.acquire()
            try:
                # Autocommit: explicit SAVEPOINT/RELEASE are the only
                # transaction boundaries, so their scope matches iso
                # exactly.  timeout=0: SQLITE_BUSY surfaces immediately
                # and our own capped backoff owns the retry policy.
                self._conn = sqlite3.connect(path, isolation_level=None, timeout=0)
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=FULL")
                self._conn.executescript(_SCHEMA)
            except (sqlite3.Error, StoreError):
                self._lease.release()
                raise
        try:
            self._init_meta()
            self._db = self._recover()
        except BaseException:
            self.close()
            raise

    # -- open / recovery ------------------------------------------------------

    def _sqlite_guard(self, exc: sqlite3.Error) -> StoreError:
        """Map a raw sqlite3 error (malformed file, disk image not a
        database, ...) to a structured store error."""
        return StoreCorrupt(self.path, "file", None, "sqlite error: %s" % exc)

    def _init_meta(self) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
        except sqlite3.Error as exc:
            raise self._sqlite_guard(exc)
        if row is None:
            if self.readonly:
                raise StoreCorrupt(
                    self.path, "meta", None, "no schema_version row"
                )
            self._exec_many(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [("schema_version", SCHEMA_VERSION), ("generation", 0),
                 ("checkpoint_seq", 0), ("snapshot_digest", content_digest(()))],
            )
        elif row[0] != SCHEMA_VERSION:
            if self.readonly:
                # Degraded inspection of a foreign-version file: report
                # instead of refusing, but do not try to decode blobs
                # whose framing we do not know.
                self.degraded = (
                    "schema version %d, expected %d" % (row[0], SCHEMA_VERSION)
                )
                return
            raise StoreError(
                "%s: store schema version %d, expected %d (run "
                "'tdlog store fsck' to inspect)"
                % (self.path, row[0], SCHEMA_VERSION)
            )

    def _meta(self, key: str, default: Optional[int] = None) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        ).fetchone()
        if row is None:
            if default is not None:
                return default
            raise StoreCorrupt(self.path, "meta", None, "missing key %r" % key)
        return row[0]

    def _recover(self) -> Database:
        """Load the snapshot and replay the WAL tail over it -- the
        recovery procedure, run unconditionally on every open (with an
        empty tail it is just the snapshot load).

        Every record is frame-verified first.  A torn *final* WAL record
        is truncated (``store.wal_truncated``); damage anywhere else
        raises :class:`StoreCorrupt` -- except under ``readonly=True``,
        where replay stops at the first bad record and the store opens
        degraded.
        """
        if self.degraded is not None:  # readonly, foreign schema version
            return Database()
        obs = active()
        facts = []
        try:
            snapshot_rows = list(
                self._conn.execute("SELECT rowid, fact FROM snapshot")
            )
            wal_rows = list(
                self._conn.execute(
                    "SELECT seq, op, fact FROM wal WHERE seq > ? ORDER BY seq",
                    (self._meta("checkpoint_seq", 0),),
                )
            )
        except sqlite3.Error as exc:
            raise self._sqlite_guard(exc)
        for rowid, blob in snapshot_rows:
            try:
                facts.append(
                    decode_record(blob, path=self.path, table="snapshot",
                                  rowid=rowid)
                )
            except (TornRecord, StoreCorrupt) as exc:
                # The snapshot is rewritten in one SQL transaction, so a
                # torn snapshot row is damage, never an interrupted
                # append.
                if self.readonly:
                    self.degraded = "snapshot row %d: %s" % (
                        rowid, getattr(exc, "reason", exc))
                    return Database(facts)
                if isinstance(exc, TornRecord):
                    raise StoreCorrupt(
                        self.path, "snapshot", rowid, exc.reason
                    )
                raise
        db = Database(facts)
        replayed = 0
        truncated_from: Optional[int] = None
        for index, (seq, op, blob) in enumerate(wal_rows):
            try:
                fact = decode_record(blob, path=self.path, table="wal", rowid=seq)
                if op not in ("+", "-"):
                    raise StoreCorrupt(
                        self.path, "wal", seq, "unknown op %r" % op
                    )
            except TornRecord as exc:
                if index == len(wal_rows) - 1:
                    # Torn tail: the append this row belongs to never
                    # completed; drop it and recover to the prefix.
                    truncated_from = seq
                    break
                if self.readonly:
                    self.degraded = "wal row %d: %s" % (seq, exc.reason)
                    break
                raise StoreCorrupt(
                    self.path, "wal", seq,
                    "torn record before end of log: %s" % exc.reason,
                )
            except StoreCorrupt as exc:
                if self.readonly:
                    self.degraded = "wal row %d: %s" % (seq, exc.reason)
                    break
                raise
            db = db.insert(fact) if op == "+" else db.delete(fact)
            replayed += 1
        if truncated_from is not None:
            if not self.readonly:
                self._exec(
                    "DELETE FROM wal WHERE seq >= ?", (truncated_from,)
                )
            else:
                self.degraded = "torn final wal record %d" % truncated_from
            if obs.enabled:
                obs.metrics.inc("store.wal_truncated")
        if obs.enabled:
            obs.metrics.inc("store.opens")
            if replayed:
                obs.metrics.inc("store.recoveries")
                obs.metrics.inc("store.wal_replayed", replayed)
        return db

    # -- guards ---------------------------------------------------------------

    def _check_live(self) -> None:
        if self._crashed:
            raise StoreCrashed("%s: store crashed; reopen to recover" % self.path)
        if self._closed:
            raise StoreError("%s: store is closed" % self.path)

    def _check_writable(self) -> None:
        self._check_live()
        if self.readonly:
            raise StoreError("%s: store is read-only" % self.path)
        if self._lease is not None:
            self._lease.check()

    def _crash(self, point: str, tick: int) -> None:
        """Simulated process death: refuse everything from here on and
        drop the resources exactly as the OS would -- the connection
        closes (rolling back any uncommitted scope, which is how SQLite
        treats a dead process's transaction) and the lease flock dies
        with its holder while the sidecar record lingers."""
        self._crashed = True
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - defensive
            pass
        if self._lease is not None:
            self._lease.release(unlink=False)
        raise StoreCrashed(
            "%s: injected crash at %s (tick %d)" % (self.path, point, tick)
        )

    def _maybe_crash(self, point: str, tick: int) -> None:
        for crash_point, window in self._crash_points:
            if crash_point == point and window.active(tick):
                self._crash(point, tick)

    # -- SQLITE_BUSY backoff --------------------------------------------------

    def _exec(self, sql: str, params: Tuple = ()):
        return self._retry_busy(lambda: self._conn.execute(sql, params))

    def _exec_many(self, sql: str, rows) -> None:
        self._retry_busy(lambda: self._conn.executemany(sql, rows))

    def _retry_busy(self, op):
        """Run *op*, retrying ``SQLITE_BUSY``/``SQLITE_LOCKED`` with
        capped exponential backoff; counted as ``store.busy_retries``."""
        attempt = 0
        while True:
            try:
                return op()
            except sqlite3.OperationalError as exc:
                message = str(exc)
                if "locked" not in message and "busy" not in message:
                    raise self._sqlite_guard(exc)
                if attempt >= self._busy_retries:
                    raise StoreBusy(
                        "%s: SQLITE_BUSY after %d retries: %s"
                        % (self.path, attempt, message)
                    )
                delay = min(self._busy_cap, self._busy_backoff * (2 ** attempt))
                attempt += 1
                obs = active()
                if obs.enabled:
                    obs.metrics.inc("store.busy_retries")
                self._sleep(delay)
            except sqlite3.Error as exc:
                raise self._sqlite_guard(exc)

    # -- state ----------------------------------------------------------------

    def database(self) -> Database:
        self._check_live()
        return self._db

    # -- updates --------------------------------------------------------------

    def _append(self, op: str, fact: Atom) -> None:
        """Durably append one WAL row, honouring crash injection.

        ``pre-fsync`` crashes fire before the row is written (nothing
        durable); ``post-fsync`` crashes fire after the row is on disk
        but before the mirror advances -- the store is then torn exactly
        the way a power-cut mid-commit tears a real system, and only the
        reopen replay may heal it.

        Inside an open savepoint the row is *staged* instead of written:
        it joins the scope's batch and hits SQLite in one ``executemany``
        when the outermost scope releases.  Crash ticks still advance
        and both crash points still fire per fact delta, and a crash
        loses the staged rows exactly as it loses a scope's uncommitted
        SQL rows today -- an open scope rolls back on reopen either way.
        """
        self._appends += 1
        tick = self._appends
        self._maybe_crash("pre-fsync", tick)
        if self._lease is not None:
            self._lease.renew()
        obs = active()
        if self._stack:
            self._wal_buffer.append((op, fact.pred, frame_record(fact)))
            if obs.enabled:
                obs.metrics.inc("store.wal_appends")
        else:
            start = time.perf_counter()
            self._exec(
                "INSERT INTO wal (op, pred, fact) VALUES (?, ?, ?)",
                (op, fact.pred, frame_record(fact)),
            )
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            if obs.enabled:
                obs.metrics.inc("store.wal_appends")
                obs.metrics.observe("store.wal_fsync_ms", elapsed_ms)
        self._maybe_crash("post-fsync", tick)

    def _flush_wal_buffer(self) -> None:
        """Write every staged WAL row in one batch (single fsync)."""
        if self._lease is not None:
            self._lease.renew()
        start = time.perf_counter()
        self._exec_many(
            "INSERT INTO wal (op, pred, fact) VALUES (?, ?, ?)",
            self._wal_buffer,
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.wal_batched", len(self._wal_buffer))
            obs.metrics.observe("store.wal_fsync_ms", elapsed_ms)
        del self._wal_buffer[:]

    def insert(self, fact: Atom) -> Database:
        self._check_writable()
        new_db = self._db.insert(fact)
        if new_db is self._db:  # already present: sets, like the paper
            return self._db
        self._append("+", fact)
        self._db = new_db
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.inserts")
        self._maybe_checkpoint()
        return self._db

    def delete(self, fact: Atom) -> Database:
        self._check_writable()
        new_db = self._db.delete(fact)
        if new_db is self._db:
            return self._db
        self._append("-", fact)
        self._db = new_db
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.deletes")
        self._maybe_checkpoint()
        return self._db

    # -- transactions (iso -> savepoint) ---------------------------------------

    def savepoint(self) -> Savepoint:
        self._check_writable()
        self._serial += 1
        sp = Savepoint("iso_%d" % self._serial, depth=len(self._stack))
        self._exec("SAVEPOINT %s" % sp.name)
        self._stack.append((sp, self._db, len(self._wal_buffer)))
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.savepoints")
        return sp

    def _pop_to(self, sp: Savepoint) -> Tuple[Database, int]:
        while self._stack:
            top, saved, mark = self._stack.pop()
            if top is sp:
                return saved, mark
        raise StoreError("unknown or already-closed savepoint: %r" % (sp,))

    def release(self, sp: Savepoint) -> None:
        self._check_writable()
        self._pop_to(sp)
        self._released += 1
        # The torn moment of a commit: the scope is logically decided
        # but the batch flush and SQL RELEASE never execute, so its WAL
        # rows die with the connection -- rollback-on-reopen, like any
        # open scope.
        self._maybe_crash("mid-savepoint-release", self._released)
        # An inner release folds its staged rows into the parent scope
        # (the buffer is shared; only marks separate scopes); the
        # outermost release flushes the whole batch in one fsync, then
        # commits it with the SQL RELEASE.
        if not self._stack and self._wal_buffer:
            self._flush_wal_buffer()
        self._exec("RELEASE %s" % sp.name)
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.releases")
        # WAL rows from the released scope are durable now; fold them
        # if the tail has grown past the threshold (or a fold was
        # deferred while this scope was open).
        self._maybe_checkpoint()

    def rollback(self, sp: Savepoint) -> None:
        self._check_writable()
        saved, mark = self._pop_to(sp)
        # Discard the rows this scope (and any nested scope) staged;
        # rows staged by still-open outer scopes stay buffered.
        del self._wal_buffer[mark:]
        # ROLLBACK TO undoes the scope's writes but leaves the
        # savepoint open; RELEASE closes it (standard SQLite pairing).
        self._exec("ROLLBACK TO %s" % sp.name)
        self._exec("RELEASE %s" % sp.name)
        self._db = saved
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.rollbacks")
        # A drained stack may unblock a checkpoint deferred inside the
        # aborted scope.
        self._maybe_checkpoint()

    # -- checkpointing ---------------------------------------------------------

    def _wal_length(self) -> int:
        # Staged-but-unflushed rows count: they will land at the next
        # outermost release, and the deferral bookkeeping in
        # _maybe_checkpoint should see the tail they are about to form.
        return self._conn.execute(
            "SELECT COUNT(*) FROM wal WHERE seq > ?",
            (self._meta("checkpoint_seq", 0),),
        ).fetchone()[0] + len(self._wal_buffer)

    def _maybe_checkpoint(self) -> None:
        if self._wal_length() < self.snapshot_every:
            # Also the end of any deferral episode: a rollback may have
            # erased the very rows that tripped the threshold.
            self._checkpoint_deferred = False
            return
        # Never checkpoint inside an open savepoint: the mirror holds
        # uncommitted state a snapshot must not capture.  Count the
        # deferral (once per episode) and retry the moment the stack
        # drains -- release() and rollback() both call back here, so
        # long-lived iso nesting cannot starve checkpoints forever.
        if self._stack:
            if not self._checkpoint_deferred:
                self._checkpoint_deferred = True
                obs = active()
                if obs.enabled:
                    obs.metrics.inc("store.checkpoint_deferred")
            return
        self.checkpoint()

    def checkpoint(self) -> int:
        """Fold the WAL tail into a fresh snapshot; returns the new
        generation.  One SQL transaction, so a crash during the fold
        leaves the previous snapshot + WAL intact."""
        self._check_writable()
        if self._stack:
            raise StoreError("cannot checkpoint inside an open savepoint")
        self._checkpoints += 1
        watermark = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) FROM wal"
        ).fetchone()[0]
        generation = self._meta("generation") + 1
        self._exec("BEGIN IMMEDIATE")
        try:
            self._exec("DELETE FROM snapshot")
            self._exec_many(
                "INSERT INTO snapshot (pred, fact) VALUES (?, ?)",
                [(fact.pred, frame_record(fact)) for fact in self._db],
            )
            self._exec(
                "UPDATE meta SET value=? WHERE key='generation'", (generation,)
            )
            self._exec(
                "UPDATE meta SET value=? WHERE key='checkpoint_seq'",
                (watermark,),
            )
            self._exec(
                "INSERT INTO meta (key, value) VALUES ('snapshot_digest', ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (content_digest(self._db),),
            )
            self._exec("DELETE FROM wal WHERE seq <= ?", (watermark,))
            # The torn moment of a fold: everything rewritten, nothing
            # committed -- the implicit rollback on reopen restores the
            # previous snapshot + WAL exactly.
            self._maybe_crash("mid-checkpoint-fold", self._checkpoints)
            self._exec("COMMIT")
        except BaseException:
            # An injected crash already closed the connection (which
            # rolls the fold back); unwind politely otherwise.
            if not self._crashed:
                self._conn.execute("ROLLBACK")
            raise
        self._checkpoint_deferred = False
        obs = active()
        if obs.enabled:
            obs.metrics.inc("store.snapshots")
        return generation

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        self._check_live()
        if self.readonly:
            return
        self._conn.execute("PRAGMA wal_checkpoint(FULL)")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Closing with open savepoints rolls their scopes back (SQLite
        # closes the transaction on disconnect) -- same as a crash.
        try:
            self._conn.close()
        finally:
            if self._lease is not None:
                self._lease.release()

    # -- introspection --------------------------------------------------------

    def stats(self):
        self._check_live()
        out = super().stats()
        out.update(
            path=self.path,
            readonly=self.readonly,
            degraded=self.degraded,
            schema_version=SCHEMA_VERSION if self.degraded is None else None,
            generation=self._meta("generation", 0),
            checkpoint_seq=self._meta("checkpoint_seq", 0),
            wal_length=self._wal_length(),
            snapshot_facts=self._conn.execute(
                "SELECT COUNT(*) FROM snapshot"
            ).fetchone()[0],
            open_savepoints=len(self._stack),
            lease=read_lease(self.path),
            quarantine=os.path.exists(self.path + QUARANTINE_SUFFIX),
        )
        return out
