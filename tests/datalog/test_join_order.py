"""Join ordering in the seminaive Datalog evaluator.

``_plan_body`` greedily orders a rule's positive literals by
bound-argument selectivity (fewest still-unbound variables, ties by
relation size, then textual position), keeping negative literals last
so stratified safety is untouched.  Any order over the positive
conjuncts enumerates the same substitutions, so the plan may only
change the *work* -- pinned here by differentials against the textual
order and against :func:`evaluate_naive`, plus counter assertions that
the reorder actually fires and actually pays.
"""

from repro import Database
from repro.core.terms import Atom, Variable, atom
from repro.datalog import (
    DatalogProgram,
    DatalogRule,
    Literal,
    evaluate,
    evaluate_naive,
)
from repro.datalog.engine import _plan_body
from repro.obs import Instrumentation, instrumented

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


#: A skewed join: ``big`` holds 30 pairs, ``key`` a single unary fact.
#: Textually ``big`` comes first, so the unplanned join scans all of it;
#: the planned join probes ``key`` first and reaches ``big`` with its
#: first argument bound (an index probe).
def skewed_program():
    return DatalogProgram([
        DatalogRule(
            Atom("q", (X, Y)),
            (Literal(Atom("big", (X, Y))), Literal(Atom("key", (X,)))),
        ),
    ])


def skewed_edb():
    facts = [atom("big", i, i + 100) for i in range(30)]
    facts.append(atom("key", 7))
    return Database(facts)


class TestPlanBody:
    def test_selective_literal_moves_first(self):
        body = skewed_program().rules[0].body
        plan = _plan_body(body, skewed_edb())
        assert [l.atom.pred for l in plan] == ["key", "big"]

    def test_reorder_false_pins_textual_order(self):
        body = skewed_program().rules[0].body
        plan = _plan_body(body, skewed_edb(), reorder=False)
        assert [l.atom.pred for l in plan] == ["big", "key"]

    def test_negatives_stay_last(self):
        # Even a maximally selective negative literal must not move
        # ahead of the positives that ground its variables.
        body = (
            Literal(Atom("big", (X, Y))),
            Literal(Atom("blocked", (X,)), False),
            Literal(Atom("key", (X,))),
        )
        plan = _plan_body(body, skewed_edb())
        assert [l.atom.pred for l in plan] == ["key", "big", "blocked"]
        assert not plan[-1].positive

    def test_ties_break_by_relation_size_then_position(self):
        body = (
            Literal(Atom("wide", (X,))),
            Literal(Atom("narrow", (X,))),
        )
        edb = Database(
            [atom("wide", i) for i in range(5)] + [atom("narrow", 0)]
        )
        plan = _plan_body(body, edb)
        assert [l.atom.pred for l in plan] == ["narrow", "wide"]
        # Identical relations: textual order is preserved (no churn).
        even = Database([atom("wide", 0), atom("narrow", 0)])
        assert [l.atom.pred for l in _plan_body(body, even)] == [
            "wide", "narrow",
        ]


def tc_program():
    return DatalogProgram([
        DatalogRule(Atom("path", (X, Y)), (Literal(Atom("e", (X, Y))),)),
        DatalogRule(
            Atom("path", (X, Y)),
            (Literal(Atom("path", (Z, Y))), Literal(Atom("e", (X, Z)))),
        ),
    ])


def negation_program():
    return DatalogProgram([
        DatalogRule(Atom("reach", (X,)), (Literal(Atom("src", (X,))),)),
        DatalogRule(
            Atom("reach", (Y,)),
            (Literal(Atom("reach", (X,))), Literal(Atom("e", (X, Y)))),
        ),
        DatalogRule(
            Atom("cut", (X,)),
            (
                Literal(Atom("node", (X,))),
                Literal(Atom("reach", (X,)), False),
            ),
        ),
    ])


class TestDifferential:
    def test_skewed_join_answers_are_plan_independent(self):
        program, edb = skewed_program(), skewed_edb()
        planned = evaluate(program, edb)
        textual = evaluate(program, edb, reorder=False)
        naive = evaluate_naive(program, edb)
        assert planned == textual == naive
        assert atom("q", 7, 107) in planned
        assert len(planned.facts("q")) == 1

    def test_recursive_closure_is_plan_independent(self):
        # The recursive rule is written delta-hostile (recursive literal
        # first): planning may move it, seminaive delta positions are
        # computed against the plan, and the fixpoint must not care.
        edb = Database([atom("e", i, i + 1) for i in range(6)])
        program = tc_program()
        planned = evaluate(program, edb)
        assert planned == evaluate(program, edb, reorder=False)
        assert planned == evaluate_naive(program, edb)
        assert len(planned.facts("path")) == 21

    def test_stratified_negation_is_plan_independent(self):
        edb = Database([
            atom("src", "a"), atom("e", "a", "b"), atom("e", "b", "c"),
            atom("node", "a"), atom("node", "c"), atom("node", "z"),
        ])
        program = negation_program()
        planned = evaluate(program, edb)
        assert planned == evaluate(program, edb, reorder=False)
        assert planned == evaluate_naive(program, edb)
        assert atom("cut", "z") in planned
        assert atom("cut", "c") not in planned


class TestCounters:
    def _measure(self, reorder):
        inst = Instrumentation.create()
        with instrumented(inst):
            result = evaluate(skewed_program(), skewed_edb(), reorder=reorder)
        return result, inst.metrics

    def test_reorder_counter_fires_only_when_the_plan_changes(self):
        _, planned = self._measure(True)
        _, textual = self._measure(False)
        assert planned.counter("join.reorders") > 0
        assert textual.counter("join.reorders") == 0

    def test_planned_join_attempts_fewer_matches(self):
        # The textual order scans all 30 ``big`` facts per pass; the
        # planned order probes ``key`` and then ``big`` bound on X.
        planned_db, planned = self._measure(True)
        textual_db, textual = self._measure(False)
        assert planned_db == textual_db
        assert planned.counter("unify.attempts") * 2 <= textual.counter(
            "unify.attempts"
        )
