"""Datalog abstract syntax: rules with conjunctive bodies and stratified
negation.

Shares terms and atoms with :mod:`repro.core.terms`.  A rule body is a
sequence of literals (positive or negated atoms); evaluation order within
a body is a query-plan detail, not semantics -- the engine reorders
literals for safety (negation last).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.terms import Atom, Signature, Variable

__all__ = ["Literal", "DatalogRule", "DatalogProgram", "StratificationError"]


class StratificationError(ValueError):
    """The program has negation through recursion (no stratification)."""


@dataclass(frozen=True)
class Literal:
    """A body literal: an atom, possibly negated."""

    atom: Atom
    positive: bool = True

    def __str__(self) -> str:
        return str(self.atom) if self.positive else "not %s" % (self.atom,)


@dataclass(frozen=True)
class DatalogRule:
    """``head :- body``.  Safety: every head variable and every variable
    of a negative literal must occur in some positive body literal."""

    head: Atom
    body: Tuple[Literal, ...] = ()

    def check_safety(self) -> None:
        positive_vars: Set[Variable] = set()
        for lit in self.body:
            if lit.positive:
                positive_vars.update(lit.atom.variables())
        for v in self.head.variables():
            if v not in positive_vars:
                raise ValueError(
                    "unsafe rule: head variable %s of %s not bound by a "
                    "positive body literal" % (v, self.head)
                )
        for lit in self.body:
            if not lit.positive:
                for v in lit.atom.variables():
                    if v not in positive_vars:
                        raise ValueError(
                            "unsafe rule: negated variable %s in rule for "
                            "%s not bound positively" % (v, self.head)
                        )

    def __str__(self) -> str:
        if not self.body:
            return "%s." % (self.head,)
        return "%s :- %s." % (self.head, ", ".join(str(l) for l in self.body))


class DatalogProgram:
    """A set of Datalog rules with a computed stratification.

    Predicates defined by rules are *intensional* (IDB); all others are
    *extensional* (EDB, supplied by the input database).
    """

    def __init__(self, rules: Iterable[DatalogRule]):
        self.rules: Tuple[DatalogRule, ...] = tuple(rules)
        for rule in self.rules:
            rule.check_safety()
        self.idb: Set[Signature] = {r.head.signature for r in self.rules}
        self.strata: Tuple[Tuple[Signature, ...], ...] = self._stratify()

    def rules_for_stratum(self, stratum: Sequence[Signature]) -> List[DatalogRule]:
        group = set(stratum)
        return [r for r in self.rules if r.head.signature in group]

    def _stratify(self) -> Tuple[Tuple[Signature, ...], ...]:
        """Assign strata: predicates negated by p must be fully computed
        before p.  Raises :class:`StratificationError` if negation occurs
        inside a recursive cycle."""
        level: Dict[Signature, int] = {sig: 0 for sig in self.idb}
        n = len(self.idb) or 1
        # Bellman-Ford style relaxation over the dependency graph:
        # positive edge keeps the level, negative edge forces +1.
        for iteration in range(n * n + 1):
            changed = False
            for rule in self.rules:
                head = rule.head.signature
                for lit in rule.body:
                    sig = lit.atom.signature
                    if sig not in self.idb:
                        continue
                    required = level[sig] + (0 if lit.positive else 1)
                    if level[head] < required:
                        level[head] = required
                        changed = True
                        if level[head] > n:
                            raise StratificationError(
                                "negation through recursion involving %s/%d"
                                % head
                            )
            if not changed:
                break
        buckets: Dict[int, List[Signature]] = {}
        for sig, lv in level.items():
            buckets.setdefault(lv, []).append(sig)
        return tuple(
            tuple(sorted(buckets[lv])) for lv in sorted(buckets)
        )

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)
