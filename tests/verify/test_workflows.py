"""Tests for the packaged workflow verifier."""

import pytest

from repro.verify import verify_workflow
from repro.workflow import (
    Agent,
    NonVital,
    SeqFlow,
    Step,
    Task,
    WorkflowSimulator,
    WorkflowSpec,
)


def make_sim(tasks, agents):
    spec = WorkflowSpec(
        "flow", SeqFlow(*(Step(t.name) for t in tasks)), tuple(tasks)
    )
    return WorkflowSimulator([spec], agents=agents)


class TestHealthyWorkflow:
    def test_completable_and_agent_safe(self):
        sim = make_sim(
            [Task("a", role="tech"), Task("b", role="tech")],
            [Agent("t1", ("tech",))],
        )
        report = verify_workflow(sim, ["w1"], final_task="b")
        assert report.completable
        assert report.agent_safe
        assert not report.has_cycles

    def test_multi_item_state_space_grows(self):
        sim = make_sim([Task("a", role="tech")], [Agent("t1", ("tech",))])
        r1 = verify_workflow(sim, ["w1"], final_task="a")
        r2 = verify_workflow(sim, ["w1", "w2"], final_task="a")
        assert r2.states > r1.states
        assert r1.completable and r2.completable


class TestBrokenWorkflow:
    def test_uncovered_role_not_completable(self):
        sim = make_sim(
            [Task("a", role="tech"), Task("b", role="ghost")],
            [Agent("t1", ("tech",))],
        )
        report = verify_workflow(sim, ["w1"], final_task="b")
        assert not report.completable
        assert report.doomed_states == report.states  # everything doomed
        assert not report.commit_safe

    def test_nonvital_rescues_completability(self):
        spec = WorkflowSpec(
            "flow",
            SeqFlow(Step("a"), NonVital(Step("b")), Step("c")),
            (Task("a", role="tech"), Task("b", role="ghost"),
             Task("c", role="tech")),
        )
        sim = WorkflowSimulator([spec], agents=[Agent("t1", ("tech",))])
        report = verify_workflow(sim, ["w1"], final_task="c")
        assert report.completable


class TestReportRendering:
    def test_summary_text(self):
        sim = make_sim([Task("a", role="tech")], [Agent("t1", ("tech",))])
        report = verify_workflow(sim, ["w1"], final_task="a")
        text = report.summary()
        assert "explored states" in text
        assert "completable:         yes" in text

    def test_doomed_trace_shown_when_incomplete(self):
        sim = make_sim([Task("a", role="ghost")], [Agent("t1", ("tech",))])
        report = verify_workflow(sim, ["w1"], final_task="a")
        assert "doomed trace" in report.summary() or report.doomed_example is not None
