"""Workflow modeling on top of Transaction Datalog.

This subpackage packages the paper's Section 3 methodology as a small
library: you describe a *production workflow* -- tasks, their qualified
agents, control flow (sequence / parallel / choice / iteration), and
synchronization points -- and it compiles to a TD rulebase in exactly the
style of Examples 3.1-3.4:

* Example 3.1 -- task graphs and sub-workflows: the combinators
  :class:`Step`, :class:`SeqFlow`, :class:`ParFlow`, :class:`Choice`,
  :class:`Subflow` compile to rules like
  ``workflow(W) <- task1(W) * (task2(W) | subflow(W)) * task5(W)``;
* Example 3.2 -- dynamic instance creation: the simulator's driver rules
  ``simulate <- workitem(W) * del.workitem(W) * (workflow(W) | simulate)``
  spawn one concurrent workflow instance per work item;
* Example 3.3 -- shared resources: each task acquires a qualified agent
  from the database pool, records its work in the (insert-only) history,
  and releases the agent;
* Example 3.4 -- cooperating workflows: :class:`WaitFor` /
  :class:`Emit` / :class:`Consume` synchronize and communicate through
  the database.
"""

from .model import (
    Agent,
    Choice,
    Consume,
    Emit,
    Iterate,
    Node,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSpec,
)
from .compiler import compile_workflows
from .scheduler import SimulationResult, WorkflowSimulator
from .monitor import agent_workload, completed_items, history_program, task_counts
from .constraints import (
    Before,
    Constraint,
    Exclusive,
    MustFollow,
    Requires,
    Violation,
    check_history,
    check_trace,
)
from .enforce import enforce
from .eventlog import event_log, timeline, to_json
from .analytics import (
    AgentStats,
    CriticalPath,
    ItemFlow,
    TaskExecution,
    TaskStats,
    agent_utilization,
    attribute_wall_clock,
    critical_path,
    item_flows,
    latency_by_task,
    render_analytics,
    task_executions,
)
from .staffing import StaffingReport, analyze_staffing, peak_role_demand
from .visualize import ascii_tree, to_dot

__all__ = [
    "Agent",
    "Before",
    "Constraint",
    "Exclusive",
    "MustFollow",
    "Requires",
    "Violation",
    "Choice",
    "Consume",
    "Emit",
    "Iterate",
    "Node",
    "NonVital",
    "ParFlow",
    "SeqFlow",
    "SimulationResult",
    "Step",
    "Subflow",
    "Task",
    "WaitFor",
    "StaffingReport",
    "WorkflowSimulator",
    "WorkflowSpec",
    "AgentStats",
    "CriticalPath",
    "ItemFlow",
    "TaskExecution",
    "TaskStats",
    "agent_utilization",
    "agent_workload",
    "analyze_staffing",
    "ascii_tree",
    "attribute_wall_clock",
    "critical_path",
    "item_flows",
    "latency_by_task",
    "render_analytics",
    "task_executions",
    "check_history",
    "check_trace",
    "enforce",
    "event_log",
    "compile_workflows",
    "completed_items",
    "history_program",
    "peak_role_demand",
    "task_counts",
    "timeline",
    "to_dot",
    "to_json",
]
