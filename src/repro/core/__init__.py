"""Core Transaction Datalog: syntax, semantics, engines, analysis.

This subpackage is the paper's primary contribution.  The layering:

``terms`` / ``unify`` / ``database``
    first-order machinery and immutable database states;
``formulas`` / ``program`` / ``parser`` / ``pretty``
    the language -- AST, rulebases, concrete syntax;
``transitions`` / ``interpreter``
    the procedural interpretation (small-step semantics) and the full-TD
    engine (BFS semi-decision procedure + DFS simulation scheduler);
``seqeval`` / ``nonrec``
    decision procedures for the sequential and nonrecursive sublanguages;
``analysis`` / ``engine``
    the sublanguage classifier and the engine façade that routes each
    program to the weakest adequate evaluator.
"""

from .analysis import Analysis, Sublanguage, analyze, classify
from .database import Database, Schema, SchemaError
from .engine import Engine, select_engine, solve
from .errors import (
    AttemptBudgetExceeded,
    DeadlineExceeded,
    ReproError,
    SafetyError,
    SearchBudgetExceeded,
    TDError,
    UnsupportedProgramError,
)
from .formulas import (
    Builtin,
    Call,
    Conc,
    Del,
    Formula,
    Ins,
    Isol,
    Neg,
    Seq,
    Test,
    TRUTH,
    Truth,
    conc,
    iso,
    seq,
)
from .interpreter import Checkpoint, Deadline, Execution, Interpreter, Solution
from .nonrec import NonrecursiveEngine
from .parser import (
    ParseError,
    as_goal,
    parse_atom,
    parse_database,
    parse_goal,
    parse_program,
    parse_rules,
)
from .pretty import (
    format_database,
    format_goal,
    format_program,
    format_rule,
    format_trace,
)
from .program import Program, ProgramError, Rule
from .seqeval import SequentialEngine
from .terms import Atom, Constant, Variable, atom, const, var
from .transitions import Action

__all__ = [
    "Action",
    "Analysis",
    "Atom",
    "AttemptBudgetExceeded",
    "Builtin",
    "Call",
    "Checkpoint",
    "Conc",
    "Constant",
    "Database",
    "Deadline",
    "DeadlineExceeded",
    "Del",
    "Engine",
    "Execution",
    "Formula",
    "Ins",
    "Interpreter",
    "Isol",
    "Neg",
    "NonrecursiveEngine",
    "ParseError",
    "Program",
    "ProgramError",
    "ReproError",
    "Rule",
    "SafetyError",
    "Schema",
    "SchemaError",
    "SearchBudgetExceeded",
    "Seq",
    "SequentialEngine",
    "Solution",
    "Sublanguage",
    "TDError",
    "TRUTH",
    "Test",
    "Truth",
    "UnsupportedProgramError",
    "Variable",
    "analyze",
    "as_goal",
    "atom",
    "classify",
    "conc",
    "const",
    "format_database",
    "format_goal",
    "format_program",
    "format_rule",
    "format_trace",
    "iso",
    "parse_atom",
    "parse_database",
    "parse_goal",
    "parse_program",
    "parse_rules",
    "select_engine",
    "seq",
    "solve",
    "var",
]
