"""Engine façade: pick the weakest adequate evaluator for a program.

The paper's complexity map is prescriptive for implementations: the less
expressive the sublanguage, the better the evaluation strategy available.
:func:`select_engine` runs the classifier and routes:

========================  =============================  ==============
sublanguage               engine                         termination
========================  =============================  ==============
query-only TD             tabled sequential evaluator    decision proc.
nonrecursive TD           memoized top-down evaluator    decision proc.
fully bounded TD          small-step exhaustive search   decision proc.
sequential TD             tabled sequential evaluator    decision proc.
full TD                   small-step BFS                 semi-decision
========================  =============================  ==============

:class:`Engine` wraps the result with a uniform API (``succeeds``,
``solve``, ``final_databases``, ``simulate``) so examples, tests and
benchmarks do not care which evaluator runs underneath.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, Optional, Set, Union

from ..obs.context import Instrumentation, active
from .analysis import Analysis, Sublanguage, analyze
from .database import Database
from .errors import ReproError
from .formulas import Formula
from .interpreter import (
    Checkpoint,
    Deadline,
    Execution,
    Interpreter,
    Solution,
    _simulate_legacy_args,
)
from .nonrec import NonrecursiveEngine
from .parser import as_goal
from .program import Program
from .seqeval import SequentialEngine

__all__ = ["Engine", "select_engine", "solve"]

_Backend = Union[Interpreter, SequentialEngine, NonrecursiveEngine]


def _annotate(exc: ReproError, goal: Union[str, Formula]) -> ReproError:
    """Stamp the user's goal on an escaping engine error.

    The façade re-raises the *same* exception object, never a rewrap, so
    the structured fields set deeper down (``spent``, ``checkpoint``)
    survive the crossing; only a missing ``goal`` is filled in.
    """
    if getattr(exc, "goal", None) is None:
        exc.goal = goal
    return exc

#: Sublanguages for which the selected procedure is guaranteed to halt.
_DECIDABLE = {
    Sublanguage.QUERY_ONLY,
    Sublanguage.NONRECURSIVE,
    Sublanguage.FULLY_BOUNDED,
    Sublanguage.SEQUENTIAL,
}


@dataclass
class Engine:
    """A program bundled with the evaluator chosen for its sublanguage."""

    program: Program
    backend: _Backend
    analysis: Analysis
    sublanguage: Sublanguage

    @property
    def decidable(self) -> bool:
        """True when evaluation is guaranteed to terminate."""
        return self.sublanguage in _DECIDABLE

    def _goal(self, goal: Union[str, Formula]) -> Formula:
        return as_goal(goal)

    def _describe(self) -> Instrumentation:
        """Stamp the active instrumentation (if any) with what runs here:
        backend class, sublanguage, decidability.  Returns the bundle so
        callers can hang timers off it."""
        obs = active()
        if obs.enabled:
            obs.metrics.set_info("engine.backend", type(self.backend).__name__)
            obs.metrics.set_info("engine.sublanguage", self.sublanguage.value)
            obs.metrics.set_info("engine.decidable", str(self.decidable).lower())
        return obs

    def _timer_name(self) -> str:
        return "time.%s" % self.sublanguage.name.lower()

    def succeeds(self, goal: Union[str, Formula], db: Optional[Database] = None) -> bool:
        """Does some execution of *goal* from *db* commit?"""
        obs = self._describe()
        try:
            if not obs.enabled:
                return self.backend.succeeds(self._goal(goal), db)
            with obs.metrics.timer(self._timer_name()):
                return self.backend.succeeds(self._goal(goal), db)
        except ReproError as exc:
            raise _annotate(exc, goal)

    def solve(
        self,
        goal: Union[str, Formula],
        db: Optional[Database] = None,
        *,
        deadline: Union[None, float, Deadline] = None,
    ) -> Iterator[Solution]:
        """Enumerate (answer bindings, final state) pairs.

        *deadline* arms a cooperative stop on the small-step backend
        (full/bounded TD); the analytic backends are decision procedures
        and ignore it.  With ``db=None`` the initial state comes from
        the backend's attached store (``store=`` on
        :func:`select_engine`, or the ambient provider).
        """
        obs = self._describe()
        return self._timed_solve(goal, db, obs, deadline)

    def _timed_solve(
        self,
        goal: Union[str, Formula],
        db: Optional[Database],
        obs: Instrumentation,
        deadline: Union[None, float, Deadline] = None,
    ) -> Iterator[Solution]:
        """Enumerate solutions, accruing wall time per sublanguage.

        The timer covers time spent *inside* the backend iterator, not
        whatever the consumer does between answers.  Engine errors
        escaping the backend cross this façade as the same exception
        object (``spent``/``checkpoint`` intact), with the user's goal
        stamped on.
        """
        name = self._timer_name()
        if deadline is not None and isinstance(self.backend, Interpreter):
            inner = self.backend.solve(self._goal(goal), db, deadline=deadline)
        else:
            inner = self.backend.solve(self._goal(goal), db)
        while True:
            try:
                if not obs.enabled:
                    solution = next(inner)
                else:
                    with obs.metrics.timer(name):
                        solution = next(inner)
            except StopIteration:
                return
            except ReproError as exc:
                raise _annotate(exc, goal)
            yield solution

    def resume(self, checkpoint: Checkpoint, **kwargs) -> Iterator[Solution]:
        """Continue an interrupted small-step search (see
        :meth:`Interpreter.resume`); checkpoints only come from the
        small-step backend, so an interpreter always handles this."""
        interp = (
            self.backend
            if isinstance(self.backend, Interpreter)
            else Interpreter(
                self.program,
                provenance=getattr(self.backend, "provenance", None),
                attribution=getattr(self.backend, "attribution", None),
                tabling=getattr(self.backend, "tabling", True),
            )
        )
        return interp.resume(checkpoint, **kwargs)

    def final_databases(
        self, goal: Union[str, Formula], db: Optional[Database] = None
    ) -> Set[Database]:
        """All states the transaction can leave the database in."""
        obs = self._describe()
        try:
            if not obs.enabled:
                return self.backend.final_databases(self._goal(goal), db)
            with obs.metrics.timer(self._timer_name()):
                return self.backend.final_databases(self._goal(goal), db)
        except ReproError as exc:
            raise _annotate(exc, goal)

    def simulate(
        self,
        goal: Union[str, Formula],
        db: Optional[Database] = None,
        *legacy,
        seed: Optional[int] = None,
        max_depth: int = 100_000,
        deadline: Union[None, float, Deadline] = None,
    ) -> Optional[Execution]:
        """One successful execution with its full action trace.

        Simulation always uses the small-step scheduler (traces are a
        small-step notion), regardless of the analytic backend.  When a
        store is attached the winning trace is committed to it (see
        :meth:`Interpreter.simulate`).
        """
        seed, max_depth = _simulate_legacy_args(legacy, seed, max_depth)
        interp = (
            self.backend
            if isinstance(self.backend, Interpreter)
            else Interpreter(
                self.program,
                provenance=getattr(self.backend, "provenance", None),
                attribution=getattr(self.backend, "attribution", None),
                store=getattr(self.backend, "store", None),
                tabling=getattr(self.backend, "tabling", True),
            )
        )
        obs = self._describe()
        try:
            if not obs.enabled:
                return interp.simulate(
                    self._goal(goal), db, seed=seed, max_depth=max_depth,
                    deadline=deadline,
                )
            with obs.metrics.timer(self._timer_name()):
                return interp.simulate(
                    self._goal(goal), db, seed=seed, max_depth=max_depth,
                    deadline=deadline,
                )
        except ReproError as exc:
            raise _annotate(exc, goal)


def select_engine(
    program: Program,
    goal: Union[str, Formula, None] = None,
    *legacy,
    max_configs: int = 200_000,
    provenance=None,
    attribution=None,
    store=None,
    tabling: bool = True,
) -> Engine:
    """Classify *program* (and *goal*, if given) and build the matching
    engine.

    ``max_configs`` bounds the small-step searches (full and fully
    bounded TD); the big-step evaluators ignore it, as they terminate
    unconditionally.  ``provenance`` attaches a derivation recorder (see
    :mod:`repro.obs.provenance`), ``attribution`` a cost attributor
    (see :mod:`repro.obs.hotspots`), and ``store`` a storage backend
    (see :class:`repro.store.Store` and docs/STORAGE.md) to whichever
    backend is selected.  ``tabling=False`` disables answer tabling on
    the small-step backend (docs/PERFORMANCE.md; the analytic backends
    table by construction and ignore it).  Options after ``goal`` are
    keyword-only; positional ``max_configs`` keeps working for one
    deprecation cycle.
    """
    if legacy:
        if len(legacy) > 1:
            raise TypeError(
                "select_engine() takes 2 positional arguments (program, goal) "
                "but %d were given" % (2 + len(legacy))
            )
        warnings.warn(
            "passing max_configs positionally to select_engine() is "
            "deprecated; use select_engine(program, goal, max_configs=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        max_configs = legacy[0]
    if goal is not None:
        goal = as_goal(goal)
    analysis = analyze(program, goal)
    sub = analysis.classify()
    backend: _Backend
    if sub in (Sublanguage.QUERY_ONLY, Sublanguage.SEQUENTIAL):
        backend = SequentialEngine(
            program, provenance=provenance, attribution=attribution, store=store
        )
    elif sub is Sublanguage.NONRECURSIVE:
        backend = NonrecursiveEngine(
            program, provenance=provenance, attribution=attribution, store=store
        )
    else:
        backend = Interpreter(
            program,
            max_configs=max_configs,
            provenance=provenance,
            attribution=attribution,
            store=store,
            tabling=tabling,
        )
    return Engine(program=program, backend=backend, analysis=analysis, sublanguage=sub)


def solve(
    program: Program,
    goal: Union[str, Formula],
    db: Optional[Database] = None,
    *,
    max_configs: int = 200_000,
    provenance=None,
    store=None,
    tabling: bool = True,
) -> Iterator[Solution]:
    """The blessed one-call entry point: classify, pick an engine, solve.

    Equivalent to ``select_engine(program, goal).solve(goal, db)`` --
    *goal* may be a formula or concrete syntax.  Use :func:`select_engine`
    directly when reusing one engine across many goals or databases.
    ``store=`` attaches a storage backend (docs/STORAGE.md); with
    ``db=None`` the store supplies the initial state.
    """
    engine = select_engine(
        program,
        goal,
        max_configs=max_configs,
        provenance=provenance,
        store=store,
        tabling=tabling,
    )
    return engine.solve(goal, db)
