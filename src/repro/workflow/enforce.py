"""Compile intertask dependencies *into* workflow programs.

Checking constraints on traces (:mod:`repro.workflow.constraints`) tells
you a schedule was bad after the fact; the Davulcu–Kifer line of work
the paper connects to compiles constraints into the workflow itself so
bad schedules never execute.  This module does that for the locally
enforceable constraint forms:

* :class:`~repro.workflow.constraints.Requires` ``(task, prerequisite)``
  -- the task's rule gains a guard ``done(prerequisite, W, _)``: the
  task simply cannot fire for an item until the prerequisite completed.
  Operationally this *delays* the task (the guard is a tuple test, which
  blocks until the fact arrives).
* :class:`~repro.workflow.constraints.Exclusive` ``(left, right)`` --
  each side gains an atomic check-and-claim guard
  ``iso(not started(other, W) * ins.started(this, W))``: once one side
  has claimed an item, the other can never start for it (``started``
  facts are never deleted, so the failure is permanent and the engines
  prune it eagerly).

``Before`` and ``MustFollow`` are *global* properties of a schedule --
not enforceable by guarding a single rule -- and are rejected; check
them on traces, or verify them on the configuration graph.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.formulas import Ins, Neg, Test, iso, seq
from ..core.program import Program, Rule
from ..core.terms import Atom, Constant, Variable
from .compiler import task_predicate
from .constraints import Before, Constraint, Exclusive, MustFollow, Requires

__all__ = ["enforce"]


def enforce(program: Program, constraints: Sequence[Constraint]) -> Program:
    """A new program whose task rules guard the given constraints.

    *program* must be a compiled workflow program (its task rules are
    recognized by the ``task_<name>/1`` convention).  Raises
    :class:`ValueError` for constraint forms that cannot be enforced
    locally, or when a named task has no rule to guard.
    """
    guards: dict = {}  # task name -> list of guard formulas (given W)

    def add_guard(task: str, guard_factory) -> None:
        guards.setdefault(task, []).append(guard_factory)

    for constraint in constraints:
        if isinstance(constraint, Requires):
            prerequisite = constraint.prerequisite

            def requires_guard(w, prerequisite=prerequisite):
                return Test(
                    Atom("done", (Constant(prerequisite), w, Variable("_G")))
                )

            add_guard(constraint.task, requires_guard)
        elif isinstance(constraint, Exclusive):
            for this, other in (
                (constraint.left, constraint.right),
                (constraint.right, constraint.left),
            ):

                def exclusive_guard(w, this=this, other=other):
                    # Atomic check-and-claim: without iso, two parallel
                    # tasks could both pass the absence test before
                    # either records its start.  Claiming `started`
                    # inside the same atomic step closes the race (the
                    # task body's own ins.started is then a no-op).
                    return iso(
                        seq(
                            Neg(Atom("started", (Constant(other), w))),
                            Ins(Atom("started", (Constant(this), w))),
                        )
                    )

                add_guard(this, exclusive_guard)
        elif isinstance(constraint, (Before, MustFollow)):
            raise ValueError(
                "%s is a global schedule property; check it on traces or "
                "verify it on the configuration graph"
                % type(constraint).__name__
            )
        else:
            raise TypeError("unknown constraint %r" % (constraint,))

    guarded_signatures = {(task_predicate(name), 1) for name in guards}
    found = set()
    new_rules: List[Rule] = []
    for rule in program.rules:
        sig = rule.head.signature
        if sig in guarded_signatures:
            found.add(sig)
            task_name = rule.head.pred[len("task_"):]
            (w,) = rule.head.args
            guard_formulas = [factory(w) for factory in guards[task_name]]
            new_rules.append(Rule(rule.head, seq(*guard_formulas, rule.body)))
        else:
            new_rules.append(rule)

    missing = guarded_signatures - found
    if missing:
        raise ValueError(
            "no task rule found for constrained task(s): %s"
            % ", ".join(sorted(sig[0] for sig in missing))
        )
    return Program(new_rules, base=program.schema.signatures())
