"""Tests for naive/seminaive Datalog evaluation and the TD bridge."""

import pytest

from repro import Database, SequentialEngine, parse_database, parse_goal, parse_program
from repro.core.terms import Atom, Variable, atom
from repro.datalog import (
    DatalogProgram,
    DatalogRule,
    Literal,
    evaluate,
    evaluate_naive,
    from_td,
    query,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def tc_datalog():
    return DatalogProgram([
        DatalogRule(Atom("path", (X, Y)), (Literal(Atom("e", (X, Y))),)),
        DatalogRule(
            Atom("path", (X, Y)),
            (Literal(Atom("e", (X, Z))), Literal(Atom("path", (Z, Y)))),
        ),
    ])


def chain(n):
    return Database([atom("e", i, i + 1) for i in range(n)])


class TestEvaluation:
    def test_transitive_closure(self):
        facts = evaluate(tc_datalog(), chain(3))
        assert atom("path", 0, 3) in facts
        assert atom("path", 2, 0) not in facts
        assert len(facts.facts("path")) == 6

    def test_cycle_terminates(self):
        db = Database([atom("e", "a", "b"), atom("e", "b", "a")])
        facts = evaluate(tc_datalog(), db)
        assert atom("path", "a", "a") in facts

    def test_facts_only_program(self):
        prog = DatalogProgram([DatalogRule(atom("p", "a"))])
        facts = evaluate(prog, Database())
        assert atom("p", "a") in facts

    def test_stratified_negation(self):
        prog = DatalogProgram([
            DatalogRule(Atom("reach", (X,)), (Literal(Atom("src", (X,))),)),
            DatalogRule(
                Atom("reach", (Y,)),
                (Literal(Atom("reach", (X,))), Literal(Atom("e", (X, Y)))),
            ),
            DatalogRule(
                Atom("cut", (X,)),
                (Literal(Atom("node", (X,))),
                 Literal(Atom("reach", (X,)), positive=False)),
            ),
        ])
        db = Database(
            [atom("src", 0), atom("e", 0, 1), atom("node", 0), atom("node", 1),
             atom("node", 2)]
        )
        facts = evaluate(prog, db)
        assert atom("cut", 2) in facts
        assert atom("cut", 1) not in facts

    def test_query_helper(self):
        answers = query(tc_datalog(), chain(3), Atom("path", (atom("x", 0).args[0], Y)))
        assert len(answers) == 3


class TestSeminaiveVsNaive:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_chain_agreement(self, n):
        assert evaluate(tc_datalog(), chain(n)) == evaluate_naive(tc_datalog(), chain(n))

    def test_dense_graph_agreement(self):
        db = Database([atom("e", i, j) for i in range(5) for j in range(5) if i != j])
        assert evaluate(tc_datalog(), db) == evaluate_naive(tc_datalog(), db)

    def test_multiple_recursive_literals(self):
        # path via doubling: two recursive literals in one body
        prog = DatalogProgram([
            DatalogRule(Atom("p", (X, Y)), (Literal(Atom("e", (X, Y))),)),
            DatalogRule(
                Atom("p", (X, Y)),
                (Literal(Atom("p", (X, Z))), Literal(Atom("p", (Z, Y)))),
            ),
        ])
        db = chain(8)
        assert evaluate(prog, db) == evaluate_naive(prog, db)


class TestTDBridge:
    def test_query_only_td_translates(self, tc_program):
        dl = from_td(tc_program)
        assert len(dl.rules) == 2

    def test_td_and_datalog_agree(self, tc_program, chain_db):
        dl = from_td(tc_program)
        dl_facts = evaluate(dl, chain_db)
        td = SequentialEngine(tc_program)
        for x in "abcd":
            for y in "abcd":
                goal = parse_goal("path(%s, %s)" % (x, y))
                assert td.succeeds(goal, chain_db) == (
                    atom("path", x, y) in dl_facts
                )

    def test_negation_translates(self):
        prog = parse_program("fresh(X) <- sample(X) * not used(X).")
        dl = from_td(prog)
        facts = evaluate(dl, parse_database("sample(a). sample(b). used(a)."))
        assert atom("fresh", "b") in facts
        assert atom("fresh", "a") not in facts

    def test_updates_rejected(self):
        with pytest.raises(ValueError):
            from_td(parse_program("p <- q(X) * ins.r(X)."))
