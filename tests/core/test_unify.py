"""Unit tests for substitutions and unification."""

import pytest

from repro.core.terms import Atom, Constant, Variable, atom
from repro.core.unify import (
    apply_atom,
    compose,
    match_atom,
    rename_atom,
    restrict,
    unify_atoms,
    unify_terms,
    walk,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestWalk:
    def test_constant_unchanged(self):
        assert walk(a, {X: b}) == a

    def test_unbound_variable_unchanged(self):
        assert walk(X, {}) == X

    def test_bound_variable_resolves(self):
        assert walk(X, {X: a}) == a

    def test_chain_resolves(self):
        assert walk(X, {X: Y, Y: a}) == a


class TestUnifyTerms:
    def test_constants_equal(self):
        assert unify_terms(a, a) == {}

    def test_constants_unequal(self):
        assert unify_terms(a, b) is None

    def test_var_binds_constant(self):
        assert unify_terms(X, a) == {X: a}
        assert unify_terms(a, X) == {X: a}

    def test_var_var(self):
        out = unify_terms(X, Y)
        assert out is not None
        assert walk(X, out) == walk(Y, out)

    def test_respects_existing_bindings(self):
        assert unify_terms(X, b, {X: a}) is None
        assert unify_terms(X, a, {X: a}) == {X: a}


class TestUnifyAtoms:
    def test_same_atom(self):
        assert unify_atoms(atom("p", "a"), atom("p", "a")) == {}

    def test_predicate_mismatch(self):
        assert unify_atoms(atom("p", "a"), atom("q", "a")) is None

    def test_arity_mismatch(self):
        assert unify_atoms(atom("p", "a"), atom("p", "a", "b")) is None

    def test_bidirectional_binding(self):
        out = unify_atoms(Atom("p", (X, a)), Atom("p", (b, Y)))
        assert out is not None
        assert walk(X, out) == b
        assert walk(Y, out) == a

    def test_shared_variable_conflict(self):
        assert unify_atoms(Atom("p", (X, X)), Atom("p", (a, b))) is None

    def test_shared_variable_consistent(self):
        out = unify_atoms(Atom("p", (X, X)), Atom("p", (a, a)))
        assert out is not None and walk(X, out) == a


class TestMatchAtom:
    def test_one_way_only(self):
        # match binds pattern variables against a ground fact
        out = match_atom(Atom("p", (X,)), atom("p", "a"))
        assert out == {X: a}

    def test_constant_mismatch(self):
        assert match_atom(atom("p", "a"), atom("p", "b")) is None

    def test_repeated_variable(self):
        assert match_atom(Atom("p", (X, X)), atom("p", "a", "b")) is None
        out = match_atom(Atom("p", (X, X)), atom("p", "a", "a"))
        assert out == {X: a}

    def test_under_existing_substitution(self):
        assert match_atom(Atom("p", (X,)), atom("p", "b"), {X: a}) is None
        out = match_atom(Atom("p", (X,)), atom("p", "a"), {X: a})
        assert out is not None


class TestApplyAndCompose:
    def test_apply_atom(self):
        assert apply_atom(Atom("p", (X, Y)), {X: a}) == Atom("p", (a, Y))

    def test_apply_atom_no_change_returns_same(self):
        at = atom("p", "a")
        assert apply_atom(at, {X: a}) is at

    def test_compose_order(self):
        # compose(first, second): apply first, then second.
        s = compose({X: Y}, {Y: a})
        assert walk(X, s) == a

    def test_restrict(self):
        s = {X: a, Y: b}
        assert restrict(s, [X]) == {X: a}

    def test_rename_atom(self):
        renamed, renaming = rename_atom(Atom("p", (X, Y, X)), "_1")
        assert renamed == Atom("p", (Variable("X_1"), Variable("Y_1"), Variable("X_1")))
        assert renaming == {X: Variable("X_1"), Y: Variable("Y_1")}
