"""Tests for cooperating workflows (the paper's Example 3.4).

Two workflows on related work items synchronize and communicate through
the database: one produces information the other must wait for.
"""

import pytest

from repro import Database, Interpreter, atom
from repro.core.formulas import Call, conc
from repro.core.terms import Atom, Constant
from repro.workflow import (
    Agent,
    Consume,
    Emit,
    SeqFlow,
    Step,
    Task,
    WaitFor,
    WorkflowSimulator,
    WorkflowSpec,
    compile_workflows,
)
from repro.workflow.compiler import agent_facts


def producer_spec():
    return WorkflowSpec(
        "producer",
        SeqFlow(Step("measure"), Emit("mapdata")),
        (Task("measure", role="tech"),),
    )


def consumer_spec():
    return WorkflowSpec(
        "consumer",
        SeqFlow(WaitFor("mapdata"), Step("assemble")),
        (Task("assemble", role="tech"),),
    )


def run_pair(item="s1"):
    prog = compile_workflows([consumer_spec(), producer_spec()])
    interp = Interpreter(prog)
    c = Constant(item)
    goal = conc(Call(Atom("wf_consumer", (c,))), Call(Atom("wf_producer", (c,))))
    db = Database(agent_facts([Agent("t1", ("tech",))]))
    return interp.simulate(goal, db)


class TestProducerConsumer:
    def test_both_complete(self):
        exe = run_pair()
        assert exe is not None
        done = {str(f.args[0]) for f in exe.database.facts("done")}
        assert done == {"measure", "assemble"}

    def test_consumer_waits_for_producer(self):
        exe = run_pair()
        events = [str(a) for a in exe.trace]
        emit_idx = events.index("ins.mapdata(s1)")
        assemble_idx = next(
            i for i, ev in enumerate(events) if ev.startswith("ins.started(assemble")
        )
        assert emit_idx < assemble_idx

    def test_consumer_alone_deadlocks(self):
        prog = compile_workflows([consumer_spec(), producer_spec()])
        interp = Interpreter(prog)
        goal = Call(Atom("wf_consumer", (Constant("s1"),)))
        db = Database(agent_facts([Agent("t1", ("tech",))]))
        assert interp.simulate(goal, db) is None


class TestConsumeHandsOffExactlyOnce:
    def test_token_consumed(self):
        spec_p = WorkflowSpec("p", Emit("token"), ())
        spec_c = WorkflowSpec("c", Consume("token"), ())
        prog = compile_workflows([spec_c, spec_p])
        interp = Interpreter(prog)
        c = Constant("i")
        goal = conc(Call(Atom("wf_c", (c,))), Call(Atom("wf_p", (c,))))
        exe = interp.simulate(goal, Database())
        assert exe is not None
        assert atom("token", "i") not in exe.database

    def test_two_consumers_one_token_deadlock(self):
        spec_p = WorkflowSpec("p", Emit("token"), ())
        spec_c = WorkflowSpec("c", Consume("token"), ())
        prog = compile_workflows([spec_c, spec_p])
        interp = Interpreter(prog)
        c = Constant("i")
        goal = conc(
            Call(Atom("wf_c", (c,))),
            Call(Atom("wf_c", (c,))),
            Call(Atom("wf_p", (c,))),
        )
        # only one consumer can take the token; the other blocks forever
        assert interp.simulate(goal, Database()) is None


class TestCooperationViaSimulator:
    def test_extra_goal_runs_sibling_workflow(self):
        # consumer instances flow through the driver; a single producer
        # runs alongside via extra_goal, supplying the shared map data.
        sim = WorkflowSimulator(
            [consumer_spec(), producer_spec()],
            agents=[Agent("t1", ("tech",))],
        )
        producer_goal = Call(Atom("wf_producer", (Constant("s1"),)))
        res = sim.run(["s1"], extra_goal=producer_goal)
        assert res.completed("assemble") == ["s1"]
        assert res.completed("measure") == ["s1"]
