"""Synthetic genome-laboratory workload generator.

The modeled production line follows the physical-mapping workflow the
paper's examples reference: a DNA sample is received, prepared, loaded on
a gel alongside other samples, the gel is run and read, and the readings
are analyzed; inconclusive analyses repeat the gel stage (the paper:
"an experimental protocol may be repeated until a conclusive result is
achieved").
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.database import Database
from ..core.terms import Atom, atom
from ..workflow import (
    Agent,
    Choice,
    Emit,
    Iterate,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSimulator,
    WorkflowSpec,
)

__all__ = [
    "build_lab_simulator",
    "build_network_simulator",
    "gel_pipeline",
    "lab_agents",
    "mapping_then_sequencing",
    "network_agents",
    "sample_batch",
    "sequencing_pipeline",
    "synthetic_history",
]

#: The production-line stages, in flow order.
PIPELINE_TASKS: Tuple[Task, ...] = (
    Task("receive", role="clerk"),
    Task("prep_dna", role="tech"),
    Task("load_gel", role="tech"),
    Task("run_gel", role="gel_rig"),
    Task("read_gel", role="reader"),
    Task("analyze", None),  # automated analysis program
)


def gel_pipeline(iterate: bool = True) -> WorkflowSpec:
    """The gel-mapping production line as a workflow spec.

    With ``iterate=True`` (the default, matching the paper) the gel stage
    repeats until the analysis emits a conclusive result for the sample;
    the ``analyze`` task is automated and the ``conclusive`` flag is
    emitted by the workflow itself after analysis (every round concludes
    in this synthetic lab -- the point is exercising the tail-recursive
    iteration shape, which stays fully bounded).
    """
    gel_round = SeqFlow(
        Step("prep_dna"),
        ParFlow(Step("load_gel"), Step("run_gel")),
        Step("read_gel"),
        Step("analyze"),
        Emit("conclusive"),
    )
    if iterate:
        body: SeqFlow = SeqFlow(Step("receive"), Iterate(gel_round, until="conclusive"))
    else:
        body = SeqFlow(Step("receive"), gel_round)
    return WorkflowSpec(name="mapping", body=body, tasks=PIPELINE_TASKS)


def lab_agents(
    n_clerks: int = 1,
    n_techs: int = 2,
    n_rigs: int = 1,
    n_readers: int = 1,
) -> List[Agent]:
    """An agent pool with the pipeline's qualification mix.

    Technicians double as readers when there are more technicians than
    gel rigs -- mirroring real labs where staff cover multiple stations.
    """
    agents: List[Agent] = []
    for i in range(n_clerks):
        agents.append(Agent("clerk%d" % i, ("clerk",)))
    for i in range(n_techs):
        quals = ("tech", "reader") if i >= n_rigs else ("tech",)
        agents.append(Agent("tech%d" % i, quals))
    for i in range(n_rigs):
        agents.append(Agent("rig%d" % i, ("gel_rig",)))
    for i in range(n_readers):
        agents.append(Agent("reader%d" % i, ("reader",)))
    return agents


def sample_batch(n: int, prefix: str = "dna") -> List[str]:
    """Work-item identifiers for a batch of DNA samples."""
    return ["%s%04d" % (prefix, i) for i in range(n)]


def build_lab_simulator(
    iterate: bool = False,
    agents: Optional[Sequence[Agent]] = None,
    max_configs: int = 5_000_000,
    abortable: bool = False,
) -> WorkflowSimulator:
    """A ready-to-run simulator for the gel pipeline.

    ``abortable=True`` compiles the graceful-degradation task rules
    (attempts that cannot claim an agent record ``aborted`` instead of
    deadlocking) -- the configuration the fault-injection chaos suite
    runs the lab under.
    """
    pool = list(agents) if agents is not None else lab_agents()
    return WorkflowSimulator([gel_pipeline(iterate=iterate)], agents=pool,
                             max_configs=max_configs, abortable=abortable)


#: Stages of the downstream sequencing line.
SEQUENCING_TASKS: Tuple[Task, ...] = (
    Task("pick_clones", role="tech"),
    Task("sequence_run", role="sequencer"),
    Task("base_call", None),
    Task("seq_qc", role="reader"),
)


def sequencing_pipeline() -> WorkflowSpec:
    """The sequencing production line.

    It *cooperates* with the mapping line (Example 3.4's network shape):
    sequencing a sample only makes sense once its physical map exists,
    so the line blocks on the ``mapped`` fact the mapping line emits for
    the same sample.
    """
    return WorkflowSpec(
        name="sequencing",
        body=SeqFlow(
            WaitFor("mapped"),
            Step("pick_clones"),
            Step("sequence_run"),
            Step("base_call"),
            Step("seq_qc"),
        ),
        tasks=SEQUENCING_TASKS,
    )


def mapping_then_sequencing() -> Tuple[WorkflowSpec, WorkflowSpec, WorkflowSpec]:
    """The two production lines joined into a network.

    The ``genome`` workflow runs both lines *concurrently* per sample;
    the hand-off is pure database communication -- mapping ends by
    emitting ``mapped(W)``, sequencing starts by waiting for it.
    Returns (network, mapping', sequencing) specs ready for a simulator.
    """
    base = gel_pipeline(iterate=False)
    mapping = WorkflowSpec(
        name=base.name,
        body=SeqFlow(base.body, Emit("mapped")),
        tasks=base.tasks,
    )
    sequencing = sequencing_pipeline()
    network = WorkflowSpec(
        name="genome",
        body=ParFlow(Subflow("mapping"), Subflow("sequencing")),
        tasks=(),
    )
    return network, mapping, sequencing


def network_agents() -> List[Agent]:
    """An agent pool covering both production lines."""
    agents = lab_agents(n_clerks=1, n_techs=3, n_rigs=1, n_readers=1)
    agents.append(Agent("seqmachine0", ("sequencer",)))
    return agents


def build_network_simulator(max_configs: int = 8_000_000) -> WorkflowSimulator:
    """Simulator for the full two-line genome network."""
    network, mapping, sequencing = mapping_then_sequencing()
    return WorkflowSimulator(
        [network, mapping, sequencing],
        agents=network_agents(),
        max_configs=max_configs,
    )


def synthetic_history(
    n_samples: int,
    seed: int = 0,
    agents: Optional[Sequence[Agent]] = None,
) -> Database:
    """Directly generate an insert-only experiment history.

    Produces the database a full pipeline simulation would leave behind
    (``started``/``done`` facts for every stage of every sample, agents
    assigned respecting qualifications), without paying for simulation --
    used by the query benchmarks (experiment C6) that need histories with
    tens of thousands of facts.
    """
    rng = random.Random(seed)
    pool = list(agents) if agents is not None else lab_agents(2, 4, 2, 2)
    by_role = {}
    for agent in pool:
        for q in agent.qualifications:
            by_role.setdefault(q, []).append(agent.name)
    facts: List[Atom] = []
    for agent in pool:
        facts.append(atom("available", agent.name))
        for q in agent.qualifications:
            facts.append(atom("qualified", agent.name, q))
    for sample in sample_batch(n_samples):
        for task in PIPELINE_TASKS:
            facts.append(atom("started", task.name, sample))
            if task.role is None:
                performer = "auto"
            else:
                performer = rng.choice(by_role[task.role])
            facts.append(atom("done", task.name, sample, performer))
    return Database(facts)
