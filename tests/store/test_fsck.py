"""The offline verifier: ``fsck`` check coverage and ``--repair``.

Each damage class a ``.tdlog`` file can exhibit must be (a) found by
the matching check, (b) classified repairable exactly when rolling the
WAL back to its last good prefix can heal it, and (c) actually healed
by ``--repair`` -- with the removed bytes preserved in the quarantine
sidecar, never destroyed.
"""

import json
import sqlite3

import pytest

from repro import SqliteStore, StoreError, parse_atom
from repro.store.fsck import fsck, format_fsck
from repro.store.sqlite import QUARANTINE_SUFFIX


def build(path, n=6, checkpoint_at=3):
    with SqliteStore(path) as store:
        for i in range(n):
            store.insert(parse_atom("p(%d)" % i))
            if i + 1 == checkpoint_at:
                store.checkpoint()


def mutate(path, sql, *params):
    conn = sqlite3.connect(path, isolation_level=None)
    try:
        conn.execute(sql, params)
    finally:
        conn.close()


def last_wal(path):
    conn = sqlite3.connect(path)
    try:
        return conn.execute(
            "SELECT seq, fact FROM wal ORDER BY seq DESC LIMIT 1"
        ).fetchone()
    finally:
        conn.close()


class TestCleanStore:
    def test_all_checks_pass(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        report = fsck(path)
        assert report.ok
        assert report.checks == ["meta", "snapshot", "wal", "lease", "replay"]
        assert report.facts == 6
        assert report.wal_rows == 3
        assert report.lease is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no such store"):
            fsck(str(tmp_path / "absent.tdlog"))

    def test_not_a_database_raises_store_error(self, tmp_path):
        path = tmp_path / "junk.tdlog"
        path.write_bytes(b"definitely not sqlite" * 100)
        with pytest.raises(StoreError, match="cannot open"):
            fsck(str(path))

    def test_format_is_textual(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        text = format_fsck(fsck(path))
        assert "status: clean" in text
        assert "lease: free" in text


class TestMetaChecks:
    def test_missing_meta_key(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        mutate(path, "DELETE FROM meta WHERE key='snapshot_digest'")
        report = fsck(path)
        assert not report.ok
        assert any(
            "snapshot_digest" in issue.reason for issue in report.issues
        )

    def test_foreign_schema_version(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        mutate(path, "UPDATE meta SET value=99 WHERE key='schema_version'")
        report = fsck(path)
        assert any("schema version" in issue.reason for issue in report.issues)

    def test_negative_checkpoint_seq(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        mutate(path, "UPDATE meta SET value=-4 WHERE key='checkpoint_seq'")
        report = fsck(path)
        assert any("checkpoint_seq" in issue.reason for issue in report.issues)


class TestSnapshotChecks:
    def test_snapshot_crc_damage_found_and_unrepairable(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        conn = sqlite3.connect(path, isolation_level=None)
        rowid, blob = conn.execute(
            "SELECT rowid, fact FROM snapshot LIMIT 1"
        ).fetchone()
        bad = bytearray(blob)
        bad[-1] ^= 1
        conn.execute("UPDATE snapshot SET fact=? WHERE rowid=?",
                     (bytes(bad), rowid))
        conn.close()
        report = fsck(path)
        assert not report.ok
        snapshot_issues = [i for i in report.issues if i.check == "snapshot"]
        assert snapshot_issues and not any(i.repairable for i in snapshot_issues)
        # Repair must not pretend: the store stays damaged.
        report2 = fsck(path, repair=True)
        assert not report2.repaired

    def test_digest_mismatch_detected(self, tmp_path):
        # Valid frames, wrong content: rewrite the digest instead of
        # the rows -- the replay-to-content-hash check must notice.
        path = str(tmp_path / "s.tdlog")
        build(path)
        mutate(path, "UPDATE meta SET value=value+1 WHERE key='snapshot_digest'")
        report = fsck(path)
        assert any("digest mismatch" in issue.reason for issue in report.issues)


class TestWalRepair:
    def test_torn_tail_repairable_and_quarantined(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        seq, blob = last_wal(path)
        mutate(path, "UPDATE wal SET fact=? WHERE seq=?", bytes(blob[:-3]), seq)
        report = fsck(path)
        assert [i.repairable for i in report.issues] == [True]
        repaired = fsck(path, repair=True)
        assert repaired.repaired
        # Quarantine sidecar holds the removed bytes, hex-encoded.
        sidecar = path + QUARANTINE_SUFFIX
        lines = [json.loads(l) for l in open(sidecar)]
        assert lines[0]["seq"] == seq
        assert bytes.fromhex(lines[0]["fact_hex"]) == bytes(blob[:-3])
        # The store now opens cleanly at the shorter prefix.
        with SqliteStore(path) as store:
            assert len(store) == 5
        assert fsck(path).ok
        assert fsck(path).quarantine

    def test_mid_log_damage_repair_drops_the_tail(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path, n=8, checkpoint_at=2)  # 6-row tail
        conn = sqlite3.connect(path, isolation_level=None)
        rows = list(conn.execute("SELECT seq, fact FROM wal ORDER BY seq"))
        seq, blob = rows[2]
        bad = bytearray(blob)
        bad[-2] ^= 0xAA
        conn.execute("UPDATE wal SET fact=? WHERE seq=?", (bytes(bad), seq))
        conn.close()
        fsck(path, repair=True)
        sidecar_rows = [json.loads(l) for l in open(path + QUARANTINE_SUFFIX)]
        # The damaged row AND everything after it went to quarantine:
        # rows after a tear are unordered relative to the mirror state.
        assert [r["seq"] for r in sidecar_rows] == [r[0] for r in rows[2:]]
        with SqliteStore(path) as store:
            assert set(store) == {
                parse_atom("p(%d)" % i) for i in range(4)
            }

    def test_repair_on_clean_store_is_a_no_op(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        report = fsck(path, repair=True)
        assert report.ok and not report.repaired
        assert not (tmp_path / ("s.tdlog" + QUARANTINE_SUFFIX)).exists()


class TestLeaseCheck:
    def test_live_holder_is_reported(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        store = SqliteStore(path)  # holds the lease
        try:
            report = fsck(path)
            assert any(issue.check == "lease" for issue in report.issues)
            assert report.lease["pid"] > 0
        finally:
            store.close()

    def test_stale_record_is_not_an_issue(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        (tmp_path / "s.tdlog.lease").write_text(
            json.dumps({"pid": 2 ** 30 + 12345, "generation": 3,
                        "renewed_at": 0.0})
        )
        report = fsck(path)
        assert report.ok
        assert report.lease["generation"] == 3


class TestJson:
    def test_report_round_trips_to_json(self, tmp_path):
        path = str(tmp_path / "s.tdlog")
        build(path)
        seq, blob = last_wal(path)
        mutate(path, "UPDATE wal SET fact=? WHERE seq=?", b"\x00" * 8, seq)
        payload = fsck(path).to_json()
        encoded = json.loads(json.dumps(payload))
        assert encoded["ok"] is False
        assert encoded["issues"][0]["table"] == "wal"
        assert encoded["issues"][0]["rowid"] == seq
