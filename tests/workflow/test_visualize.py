"""Tests for workflow visualization."""

import pytest

from repro.lims import gel_pipeline, mapping_then_sequencing
from repro.workflow import (
    Choice,
    Emit,
    Iterate,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSpec,
)
from repro.workflow.visualize import ascii_tree, to_dot


@pytest.fixture
def spec():
    return WorkflowSpec(
        "demo",
        SeqFlow(
            Step("a"),
            ParFlow(Step("b"), Choice(Step("c"), NonVital(Step("d")))),
            Iterate(SeqFlow(Step("e"), Emit("ok")), until="ok"),
            WaitFor("ready"),
        ),
        (Task("a", role="r1"), Task("b", role="r1"), Task("c", None),
         Task("d", role="r2"), Task("e", role="r1")),
    )


class TestAsciiTree:
    def test_structure_rendered(self, spec):
        text = ascii_tree(spec)
        assert text.startswith("workflow demo")
        assert "sequence" in text
        assert "parallel" in text
        assert "choice" in text
        assert "iterate until ok" in text
        assert "non-vital" in text
        assert "wait for ready" in text

    def test_roles_annotated(self, spec):
        text = ascii_tree(spec)
        assert "step a [r1]" in text
        assert "step c [auto]" in text

    def test_indentation_nests(self, spec):
        lines = ascii_tree(spec).splitlines()
        seq_depth = next(l for l in lines if "sequence" in l).index("|--") if any(
            "|--" in l and "sequence" in l for l in lines
        ) else 0
        step_line = next(l for l in lines if "step b" in l)
        assert len(step_line) - len(step_line.lstrip("| `-")) >= seq_depth

    def test_real_pipeline_renders(self):
        text = ascii_tree(gel_pipeline(iterate=True))
        assert "iterate until conclusive" in text
        assert "step run_gel [gel_rig]" in text


class TestDot:
    def test_valid_digraph_shape(self, spec):
        dot = to_dot(spec)
        assert dot.startswith("digraph workflow {")
        assert dot.rstrip().endswith("}")
        assert "start" in dot and "end" in dot

    def test_tasks_are_boxes_with_roles(self, spec):
        dot = to_dot(spec)
        assert 'shape=box label="a\\n(r1)"' in dot
        assert 'label="c\\n(auto)"' in dot

    def test_parallel_fork_join(self, spec):
        dot = to_dot(spec)
        assert "fork" in dot and "join" in dot

    def test_choice_diamond(self, spec):
        dot = to_dot(spec)
        assert "shape=diamond" in dot

    def test_iterate_back_edge(self, spec):
        dot = to_dot(spec)
        assert 'label="until ok"' in dot

    def test_subflow_box3d(self):
        network, mapping, sequencing = mapping_then_sequencing()
        dot = to_dot(network, [network, mapping, sequencing])
        assert "box3d" in dot
        assert "mapping" in dot and "sequencing" in dot


class TestSyncAndConsumeNodes:
    def test_wait_emit_consume_render_in_dot(self):
        spec = WorkflowSpec(
            "sync",
            SeqFlow(WaitFor("ready"), Step("a"), Emit("ok")),
            (Task("a", role="r1"),),
        )
        dot = to_dot(spec)
        assert "wait for ready" in dot
        assert "emit ok" in dot
        assert "shape=ellipse" in dot

    def test_consume_labelled(self):
        from repro.workflow import Consume

        spec = WorkflowSpec(
            "c", SeqFlow(Step("a"), Consume("token")), (Task("a", None),)
        )
        assert "consume token" in ascii_tree(spec)
        assert "consume token" in to_dot(spec)

    def test_nonvital_skip_edge_in_dot(self, spec):
        dot = to_dot(spec)
        assert 'label="skip"' in dot and "style=dotted" in dot
