"""Answer tabling for the concurrent interpreter.

The T6 row of the paper observes that test+insert TD admits
Datalog-style tabled evaluation; Fodor & Kifer ("Efficient Tabling
Mechanisms for Transaction Logic Programs") give the algorithms for the
sequential Horn case, which :mod:`repro.core.seqeval` already
implements.  This module brings the same idea to the *concurrent*
interpreter (:class:`repro.core.interpreter.Interpreter`), where it is
only sound in restricted positions:

* A call in **head position** -- the whole process is ``p(t)`` or
  ``p(t) * rest`` -- executes with no possibility of external
  interleaving: sequential composition is a barrier, so every complete
  execution of ``p(t)`` from the current database is a pure function of
  the pair ``(canonical call, database)``.  Those executions are what an
  :class:`AnswerTable` caches.  A call *inside* a concurrent
  composition is never tabled (big-stepping it would erase the
  interleavings the bank example of the paper depends on).

* An ``iso(body)`` sub-search is atomic by construction, so its
  complete execution set is likewise a pure function of
  ``(canonical body, database)`` and is memoized the same way.

Keys are **delta-encoded**: the first database seen for a canonical
call shape becomes the shape's *base snapshot*, and every further state
is keyed by the two fact sets that differ from the base
(:meth:`repro.core.database.Database.difference` both ways).  A table
entry therefore costs the changed tuples, not a full database copy, and
the ``table.delta_bytes`` counter reports the encoded size.

Answers support **subsumption**: an answer binding strictly fewer
argument positions than an existing one -- same final database --
retires the more specific answer (and an arriving answer that is an
instance of a stored one is dropped).  This is the classic
answer-subsumption order; on workloads whose answers are ground (all of
the profile suite and chaos workloads) it is invisible in the solution
set, which is what the differential oracle in
``tests/core/test_tabling.py`` pins.

Recursive calls use consumer/generator **suspension** in the local-SLG
style: the generator for a key iterates the matching rule bodies; a
nested occurrence of an in-progress key consumes the current answer
snapshot instead of re-expanding, and the generator loops until a
global answer stamp stabilizes.  An entry is marked complete only when
its final round depended on no in-progress key other than itself.

``tabling=False`` on the interpreter keeps the naive search as the
differential oracle, and -- same discipline as ``por=False`` -- tabling
is bypassed entirely while a fault injector is attached, so chaos
reports stay byte-identical.  :func:`tabling_disabled` force-disables
it process-wide for audits.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .database import Database
from .terms import Atom, Term, Variable

__all__ = [
    "AnswerTable",
    "TableEntry",
    "canonical_call",
    "subsumes",
    "tabling_disabled",
    "tabling_forced_off",
]

#: Process-wide force-off switch, mirrored from the POR reducer's
#: discipline (:func:`repro.core.por.por_disabled`): audits flip it to
#: rebuild a workload with tabling off without threading a parameter
#: through every construction site.
_FORCE_DISABLED = False


def tabling_forced_off() -> bool:
    """True while a :func:`tabling_disabled` block is active."""
    return _FORCE_DISABLED


@contextmanager
def tabling_disabled():
    """Force-disable tabling for interpreters *constructed* inside the
    block (the differential smoke in CI and the profile audits)."""
    global _FORCE_DISABLED
    prev = _FORCE_DISABLED
    _FORCE_DISABLED = True
    try:
        yield
    finally:
        _FORCE_DISABLED = prev


def canonical_call(atom: Atom) -> Tuple[Atom, List[Variable]]:
    """Rename the atom's variables to V0, V1, ... in order of occurrence.

    Same convention as the sequential engine's table keys: constants
    stay, repeated variables share one canonical name.  Returns the
    canonical atom and the original variables in canonical index order,
    so served answers can be mapped back onto the caller's terms.
    """
    mapping: Dict[Variable, Variable] = {}
    originals: List[Variable] = []
    args: List[Term] = []
    for t in atom.args:
        if isinstance(t, Variable):
            if t not in mapping:
                mapping[t] = Variable("V%d" % len(mapping))
                originals.append(t)
            args.append(mapping[t])
        else:
            args.append(t)
    return Atom(atom.pred, tuple(args)), originals


def _normalize_values(values: Tuple[Term, ...]) -> Tuple[Term, ...]:
    """Canonicalize the unbound positions of an answer tuple.

    Distinct unbound variables become A0, A1, ... in order of
    occurrence (repeats share a name), so two answers differing only in
    fresh-variable identity deduplicate, and the subsumption check can
    treat any ``A``-variable as "unbound here".
    """
    mapping: Dict[Variable, Variable] = {}
    out: List[Term] = []
    for t in values:
        if isinstance(t, Variable):
            if t not in mapping:
                mapping[t] = Variable("A%d" % len(mapping))
            out.append(mapping[t])
        else:
            out.append(t)
    return tuple(out)


def subsumes(general: Tuple[Term, ...], specific: Tuple[Term, ...]) -> bool:
    """True if *general* covers *specific*: every bound position of
    *general* is identical in *specific* (an unbound -- variable --
    position of *general* matches anything).  Both tuples must be
    normalized (:func:`_normalize_values`); equal tuples subsume."""
    if len(general) != len(specific):
        return False
    for g, s in zip(general, specific):
        if isinstance(g, Variable):
            continue
        if isinstance(s, Variable) or g != s:
            return False
    return True


#: One cached answer: canonical values per argument position, the final
#: database, and the elementary-action trace of the execution that
#: produced it (replayable via ``replay_actions``).
_Answer = Tuple[Tuple[Term, ...], Database, Tuple[object, ...]]


class TableEntry:
    """All known answers for one ``(canonical call, database)`` key.

    ``order`` preserves discovery order (the serve order, which keeps
    tabled runs deterministic); ``answers`` indexes the same records by
    ``(values, final_db)`` for dedup and subsumption.  ``active`` is
    True while this entry's generator is on the stack; ``round_deps``
    collects the in-progress entries whose snapshots this entry's
    current generation round consumed (completion is only sound when
    the final round depended on nothing in flight but itself).
    """

    __slots__ = ("answers", "order", "complete", "active", "round_deps")

    def __init__(self):
        self.answers: Dict[Tuple[Tuple[Term, ...], Database], _Answer] = {}
        self.order: List[_Answer] = []
        self.complete = False
        self.active = False
        self.round_deps: set = set()

    def add(self, values, final_db, trace) -> Tuple[Optional[_Answer], int]:
        """Record an answer; returns ``(answer, retired)`` where
        *answer* is the normalized record if it was new (``None`` if a
        stored answer already subsumes it) and *retired* counts the more
        specific stored answers the new one displaced."""
        values = _normalize_values(values)
        key = (values, final_db)
        if key in self.answers:
            return None, 0
        for (stored, db), _ in self.answers.items():
            if db == final_db and subsumes(stored, values):
                return None, 0
        retired = [
            k
            for k, _ in self.answers.items()
            if k[1] == final_db and subsumes(values, k[0])
        ]
        for k in retired:
            record = self.answers.pop(k)
            self.order.remove(record)
        answer = (values, final_db, trace)
        self.answers[key] = answer
        self.order.append(answer)
        return answer, len(retired)


class _ShapeTable:
    """Entries for one canonical call shape, keyed by the delta between
    each database and the shape's base snapshot (the first database the
    shape was called from).  The delta is a bijection of the database
    given the base, so two states share an entry iff they are equal --
    the entry just never stores a second full database."""

    __slots__ = ("base", "entries")

    def __init__(self, base: Database):
        self.base = base
        self.entries: Dict[
            Tuple[frozenset, frozenset], TableEntry
        ] = {}

    def delta_key(self, db: Database) -> Tuple[frozenset, frozenset]:
        if db is self.base:
            return (frozenset(), frozenset())
        return (db.difference(self.base), self.base.difference(db))


def _delta_cost(delta: Tuple[frozenset, frozenset]) -> int:
    """Encoded size of a delta key: the rendered changed tuples."""
    added, removed = delta
    return sum(len(str(f)) for f in added) + sum(len(str(f)) for f in removed)


class AnswerTable:
    """The per-interpreter table: call-shape tables plus the iso memo.

    ``stamp`` increments on every stored answer anywhere, which is the
    generators' global fixpoint signal.  ``generating`` is the stack of
    entries whose generators are currently running; consuming an
    in-progress entry's snapshot marks every stacked generator so none
    of them completes on stale information.

    ``max_keys`` bounds the number of interned keys (call and iso
    combined): past it, new keys run untabled (``table.capped``
    counts), so an adversarial workload degrades to the naive search
    instead of exhausting memory.
    """

    def __init__(self, max_keys: int = 100_000):
        self.max_keys = max_keys
        self._shapes: Dict[Atom, _ShapeTable] = {}
        self._iso: Dict[object, _ShapeTable] = {}
        self.stamp = 0
        self.generating: List[TableEntry] = []
        self.keys = 0
        self.capped = 0

    # -- call tables -------------------------------------------------------------

    def entry(
        self, canon: Atom, db: Database
    ) -> Tuple[Optional[TableEntry], int]:
        """The entry for ``(canon, db)``, interning a key if needed;
        returns ``(entry, delta_bytes)`` where *delta_bytes* is the cost
        of a newly interned key (0 for an existing one) -- or
        ``(None, 0)`` when the key cap is reached."""
        shape = self._shapes.get(canon)
        if shape is None:
            shape = self._shapes[canon] = _ShapeTable(db)
        delta = shape.delta_key(db)
        entry = shape.entries.get(delta)
        if entry is not None:
            return entry, 0
        if self.keys >= self.max_keys:
            self.capped += 1
            return None, 0
        entry = shape.entries[delta] = TableEntry()
        self.keys += 1
        return entry, _delta_cost(delta)

    def peek(self, canon: Atom, db: Database) -> Optional[TableEntry]:
        """The entry for ``(canon, db)`` if one exists (no interning)."""
        shape = self._shapes.get(canon)
        if shape is None:
            return None
        return shape.entries.get(shape.delta_key(db))

    # -- iso memo ----------------------------------------------------------------

    def iso_entry(
        self, body_key: object, db: Database
    ) -> Tuple[Optional[TableEntry], int]:
        """Same contract as :meth:`entry`, keyed by a canonical body
        shape (``transitions._ckey_pair``) instead of a call atom."""
        shape = self._iso.get(body_key)
        if shape is None:
            shape = self._iso[body_key] = _ShapeTable(db)
        delta = shape.delta_key(db)
        entry = shape.entries.get(delta)
        if entry is not None:
            return entry, 0
        if self.keys >= self.max_keys:
            self.capped += 1
            return None, 0
        entry = shape.entries[delta] = TableEntry()
        self.keys += 1
        return entry, _delta_cost(delta)

    # -- bookkeeping -------------------------------------------------------------

    def note_consumed(self, entry: TableEntry) -> None:
        """An in-progress *entry*'s snapshot was served: no generator on
        the stack may complete this round on the strength of it."""
        for g in self.generating:
            g.round_deps.add(id(entry))

    def answer_count(self) -> int:
        return sum(
            len(e.order)
            for shape in list(self._shapes.values()) + list(self._iso.values())
            for e in shape.entries.values()
        )

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self) -> tuple:
        """A picklable warm-table snapshot for :class:`Checkpoint`.

        Captures every entry's answers and completion flag (an entry
        interrupted mid-generation is kept as a warm incomplete entry);
        the transient generator state (``active``, ``round_deps``) is
        deliberately not part of it.
        """

        def dump(shapes):
            return tuple(
                (
                    key,
                    shape.base,
                    tuple(
                        (
                            delta,
                            entry.complete and not entry.active,
                            tuple(entry.order),
                        )
                        for delta, entry in shape.entries.items()
                    ),
                )
                for key, shape in shapes.items()
            )

        return (dump(self._shapes), dump(self._iso), self.max_keys)

    @classmethod
    def restore(cls, snap: tuple) -> "AnswerTable":
        calls, isos, max_keys = snap
        table = cls(max_keys=max_keys)

        def load(dumped, target):
            for key, base, entries in dumped:
                shape = target[key] = _ShapeTable(base)
                for delta, complete, answers in entries:
                    entry = shape.entries[delta] = TableEntry()
                    table.keys += 1
                    for values, final_db, trace in answers:
                        entry.add(values, final_db, trace)
                    entry.complete = complete

        load(calls, table._shapes)
        load(isos, table._iso)
        return table
