"""Extension benchmark: model checking fully bounded workflows.

Not a paper table; this measures the verification subsystem that fully
bounded TD enables (Section 5's payoff, and the direction the follow-on
literature [Davulcu-Kifer PODS'98] took).  The interesting shape: state
space -- and hence verification cost -- grows combinatorially with
concurrent instances, while simulation stays linear; verification is a
design-time activity on small batches.
"""

import pytest

from repro.complexity import measure, print_series
from repro.verify import explore, verify_workflow
from repro.workflow import Agent, SeqFlow, Step, Task, WorkflowSimulator, WorkflowSpec


def _simulator(n_agents=1):
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("a"), Step("b")),
        (Task("a", role="tech"), Task("b", role="tech")),
    )
    agents = [Agent("t%d" % i, ("tech",)) for i in range(n_agents)]
    return WorkflowSimulator([spec], agents=agents)


def test_state_space_vs_batch_size(benchmark):
    rows = []
    for n in (1, 2, 3):
        sim = _simulator()
        report, seconds = measure(
            lambda: verify_workflow(
                sim, ["w%d" % i for i in range(n)], final_task="b",
                max_states=500_000,
            )
        )
        assert report.completable
        rows.append([n, report.states, seconds])
    print_series(
        "verification: state space vs concurrent instances",
        ["items", "states", "seconds"],
        rows,
    )
    states = [r[1] for r in rows]
    # combinatorial growth: each added instance multiplies the space
    assert states[2] / states[1] > states[1] / states[0] * 0.5
    assert states[2] > 10 * states[1]

    sim = _simulator()
    benchmark.pedantic(
        lambda: verify_workflow(sim, ["w1", "w2"], final_task="b",
                                max_states=500_000),
        rounds=3,
        iterations=1,
    )


def test_verification_vs_simulation_cost(benchmark):
    """Simulation (one witness) vs verification (all states): the gap is
    the price of the stronger guarantee."""
    rows = []
    for n in (1, 2, 3):
        sim = _simulator()
        items = ["w%d" % i for i in range(n)]
        _res, sim_s = measure(lambda: sim.run(items))
        rep, ver_s = measure(
            lambda: verify_workflow(sim, items, final_task="b",
                                    max_states=500_000)
        )
        rows.append([n, sim_s, ver_s, ver_s / max(sim_s, 1e-9)])
    print_series(
        "verification vs simulation cost",
        ["items", "simulate s", "verify s", "ratio"],
        rows,
    )
    assert rows[-1][3] > 1.0  # verification strictly costlier at scale

    sim = _simulator()
    benchmark.pedantic(lambda: sim.run(["w0", "w1", "w2"]), rounds=3, iterations=1)


def test_uncovered_role_detected(benchmark):
    spec = WorkflowSpec(
        "flow",
        SeqFlow(Step("a"), Step("b")),
        (Task("a", role="tech"), Task("b", role="ghost")),
    )
    sim = WorkflowSimulator([spec], agents=[Agent("t1", ("tech",))])
    report, seconds = measure(
        lambda: verify_workflow(sim, ["w1"], final_task="b")
    )
    assert not report.completable
    print_series(
        "verification: staffing hole detected",
        ["states", "completable", "seconds"],
        [[report.states, report.completable, seconds]],
    )
    benchmark.pedantic(
        lambda: verify_workflow(sim, ["w1"], final_task="b"),
        rounds=3,
        iterations=1,
    )
