"""Tests for workflow specifications and validation."""

import pytest

from repro.workflow import (
    Agent,
    Choice,
    Consume,
    Emit,
    Iterate,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    Task,
    WaitFor,
    WorkflowSpec,
)


def spec(body, tasks=()):
    return WorkflowSpec(name="wf", body=body, tasks=tuple(tasks))


class TestValidation:
    def test_valid_spec(self):
        s = spec(SeqFlow(Step("a"), Step("b")), [Task("a"), Task("b")])
        s.validate()

    def test_undeclared_task(self):
        s = spec(Step("ghost"), [Task("a")])
        with pytest.raises(ValueError):
            s.validate()

    def test_empty_combinator(self):
        s = spec(SeqFlow(), [])
        with pytest.raises(ValueError):
            s.validate()

    def test_unknown_subflow(self):
        s = spec(Subflow("other"), [])
        with pytest.raises(ValueError):
            s.validate()

    def test_known_subflow_accepted(self):
        s = spec(Subflow("other"), [])
        s.validate(known_workflows=["other"])

    def test_self_subflow_allowed(self):
        s = spec(Subflow("wf"), [])
        s.validate()

    def test_sync_nodes_always_valid(self):
        s = spec(SeqFlow(WaitFor("go"), Emit("done"), Consume("token")), [])
        s.validate()

    def test_nested_structures(self):
        s = spec(
            SeqFlow(
                Step("a"),
                ParFlow(Step("b"), Choice(Step("c"), Step("d"))),
                Iterate(Step("e"), until="ok"),
            ),
            [Task(n) for n in "abcde"],
        )
        s.validate()


class TestDataModel:
    def test_task_map(self):
        s = spec(Step("a"), [Task("a", role="tech"), Task("b")])
        assert s.task_map()["a"].role == "tech"
        assert s.task_map()["b"].role is None

    def test_agent_frozen(self):
        agent = Agent("alice", ("tech",))
        with pytest.raises(Exception):
            agent.name = "bob"

    def test_combinators_varargs(self):
        s = SeqFlow(Step("a"), Step("b"), Step("c"))
        assert len(s.children) == 3
        p = ParFlow(Step("a"))
        assert len(p.children) == 1
