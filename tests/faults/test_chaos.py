"""The differential chaos harness: atomicity under every fault plan,
recovery on every transient plan, byte-identical reports."""

import pytest

from repro.faults import (
    ChaosWorkload,
    Exhaustion,
    FaultPlan,
    StepFault,
    Window,
    chaos_workloads,
    format_report,
    generate_plan,
    run_chaos,
    run_one_plan,
    workload_by_name,
)

#: Seeded plans per workload in the heavyweight sweeps below.  The
#: acceptance bar for the suite is >= 50 plans per workload; the full
#: six-workload sweep at that depth is the CLI/CI gate's job (``tdlog
#: chaos``), while the tests keep the two cheapest workloads at full
#: depth and spot-check the rest.
FULL_PLANS = 50


class TestHarnessPlumbing:
    def test_workload_catalogue(self):
        names = [w.name for w in chaos_workloads()]
        assert len(names) == len(set(names))
        assert "bank_transfer" in names
        assert "lab_workflow" in names
        assert workload_by_name("bank_transfer").predicates
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_violations_are_reported(self):
        bad = ChaosWorkload(
            "always_bad", "test stub", (), (),
            runner=lambda plan, n: (True, "boom"),
        )
        (report,) = run_chaos([bad], plans=3)
        assert len(report.violations) == 3
        text = format_report([report])
        assert "FAIL" in text and "boom" in text

    def test_unrecovered_transient_plan_is_a_violation(self):
        never = ChaosWorkload(
            "never_commits", "test stub", (), (),
            runner=lambda plan, n: (False, None),
        )
        transient = FaultPlan(
            0, step_faults=(StepFault("ins", "p", Window(0, 5)),)
        )
        outcome = run_one_plan(never, transient)
        assert outcome.recovered is False
        assert "retry-wrapped goal failed to commit" in outcome.violation

    def test_non_transient_plan_may_simply_abort(self):
        never = ChaosWorkload(
            "never_commits", "test stub", (), (),
            runner=lambda plan, n: (False, None),
        )
        forced = FaultPlan(0, exhaustion=(Exhaustion(0),))
        outcome = run_one_plan(never, forced)
        assert outcome.recovered is None
        assert outcome.violation is None

    def test_committed_run_skips_the_recovery_pass(self):
        calls = []

        def runner(plan, n):
            calls.append(n)
            return True, None

        fine = ChaosWorkload("fine", "test stub", (), (), runner=runner)
        transient = FaultPlan(
            0, step_faults=(StepFault("ins", "p", Window(0, 5)),)
        )
        run_one_plan(fine, transient)
        assert calls == [0]


class TestAtomicityProperty:
    """The headline: >= FULL_PLANS seeded plans, zero violations."""

    @pytest.mark.parametrize("name", ["bank_transfer", "genome_iso"])
    def test_full_sweep_has_no_violations(self, name):
        (report,) = run_chaos([workload_by_name(name)], plans=FULL_PLANS)
        assert len(report.outcomes) == FULL_PLANS
        assert report.violations == []
        # The sweep must actually exercise faults, not trivially commit.
        assert report.aborts > 0
        assert report.recoveries > 0

    @pytest.mark.parametrize(
        "name",
        ["path_query", "genome_simulate", "lab_workflow", "lab_iterate"],
    )
    def test_spot_sweep_has_no_violations(self, name):
        (report,) = run_chaos([workload_by_name(name)], plans=12)
        assert report.violations == []


class TestDeterminism:
    def test_report_is_byte_identical_across_runs(self):
        workloads = [workload_by_name("bank_transfer")]
        first = format_report(run_chaos(workloads, plans=10, base_seed=3))
        second = format_report(run_chaos(workloads, plans=10, base_seed=3))
        assert first == second

    def test_different_base_seed_changes_the_plans(self):
        plans_a = [generate_plan(i, predicates=("p",)) for i in range(5)]
        plans_b = [generate_plan(100 + i, predicates=("p",)) for i in range(5)]
        assert plans_a != plans_b

    def test_report_has_no_wall_clock_content(self):
        (report,) = run_chaos([workload_by_name("bank_transfer")], plans=3)
        text = format_report([report])
        assert "second" not in text and " ms" not in text
