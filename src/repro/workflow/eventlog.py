"""Structured event logs from workflow executions.

Workflow-management systems live off their event logs (the paper:
"monitoring, tracking and querying the status of workflow activities").
This module turns a simulation's raw action trace into a structured,
serializable log: one record per task start/completion and per
synchronization fact, in execution order -- the shape process-mining
tools expect.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, replace
from typing import List, Optional, Sequence

from .scheduler import SimulationResult

__all__ = ["EventRecord", "event_log", "to_json", "timeline"]

#: Bookkeeping predicates of the recovery combinators
#: (:mod:`repro.faults.recovery`): attempt tokens are search machinery,
#: not workflow events, so consuming one is not logged.
_RECOVERY_TOKEN = re.compile(r"(retry|fallback|comp)_\d+_tok$")


@dataclass(frozen=True)
class EventRecord:
    """One structured workflow event.

    ``kind`` is ``task_started`` / ``task_done`` / ``task_aborted`` /
    ``item_dispatched`` / ``fact_emitted`` / ``fact_consumed``.
    ``agent`` is set only for ``task_done`` (the history records the
    performer at completion); a ``task_aborted`` record closes its
    ``task_started`` without one -- the attempt failed before any agent
    performed it.
    ``span_id``, when present, is the engine-trace span the simulation
    ran under (see :mod:`repro.obs`), so process-mining output can be
    joined against profiling traces.
    """

    seq: int
    kind: str
    item: str
    task: Optional[str] = None
    agent: Optional[str] = None
    fact: Optional[str] = None
    span_id: Optional[str] = None


def _parse_args(event: str) -> List[str]:
    """Top-level argument strings of a rendered fact.

    Splits only at depth-0 commas, so compound-term arguments survive
    (``review(claim(c1, high), p1)`` → ``["claim(c1, high)", "p1"]``),
    and a zero-argument fact (``tick()`` or bare ``tick``) yields ``[]``.
    """
    start = event.find("(")
    if start < 0:
        return []
    inner = event[start + 1 : event.rfind(")")]
    if not inner.strip():
        return []
    args: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in inner:
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        current.append(ch)
    args.append("".join(current).strip())
    return args


def event_log(
    result: SimulationResult, span_id: Optional[str] = None
) -> List[EventRecord]:
    """The structured event log of one simulation run.

    ``span_id`` overrides the correlation id stamped on every record;
    by default it is taken from the result itself (set when the
    simulation ran under instrumentation, ``None`` otherwise).
    """
    if span_id is None:
        span_id = getattr(result, "span_id", None)
    records: List[EventRecord] = []
    seq = 0
    for event in result.events:
        record: Optional[EventRecord] = None
        if event.startswith("ins.started("):
            task, item = _parse_args(event)[:2]
            record = EventRecord(seq, "task_started", item, task=task)
        elif event.startswith("ins.done("):
            task, item, agent = _parse_args(event)[:3]
            record = EventRecord(seq, "task_done", item, task=task, agent=agent)
        elif event.startswith("ins.aborted("):
            task, item = _parse_args(event)[:2]
            record = EventRecord(seq, "task_aborted", item, task=task)
        elif event.startswith("del.workitem("):
            (item,) = _parse_args(event)[:1]
            record = EventRecord(seq, "item_dispatched", item)
        elif event.startswith("ins.") and "(" in event:
            pred = event[len("ins."):event.index("(")]
            if pred not in ("started", "done", "available", "workitem"):
                args = _parse_args(event)
                record = EventRecord(
                    seq, "fact_emitted", args[-1] if args else "",
                    fact=event[len("ins."):],
                )
        elif event.startswith("del.") and "(" in event:
            pred = event[len("del."):event.index("(")]
            if pred not in ("available", "workitem", "pending") and not _RECOVERY_TOKEN.match(pred):
                args = _parse_args(event)
                record = EventRecord(
                    seq, "fact_consumed", args[-1] if args else "",
                    fact=event[len("del."):],
                )
        if record is not None:
            if span_id is not None:
                record = replace(record, span_id=span_id)
            records.append(record)
            seq += 1
    return records


def to_json(result: SimulationResult, indent: int = 2) -> str:
    """The event log as JSON (for process-mining / dashboard export).

    ``span_id`` appears only when set (instrumented runs), so the
    uninstrumented output shape is exactly what it was before tracing
    existed.
    """
    payload = []
    for record in event_log(result):
        fields = asdict(record)
        if fields.get("span_id") is None:
            del fields["span_id"]
        payload.append(fields)
    return json.dumps(payload, indent=indent)


def timeline(result: SimulationResult) -> str:
    """A human-readable per-item timeline."""
    records = event_log(result)
    by_item: dict = {}
    for record in records:
        by_item.setdefault(record.item, []).append(record)
    lines = []
    for item in sorted(by_item):
        lines.append(item + ":")
        for record in by_item[item]:
            if record.kind == "task_done":
                lines.append(
                    "  [%3d] %-14s %s (by %s)"
                    % (record.seq, record.kind, record.task, record.agent)
                )
            elif record.kind in ("task_started", "task_aborted"):
                lines.append(
                    "  [%3d] %-14s %s" % (record.seq, record.kind, record.task)
                )
            else:
                lines.append(
                    "  [%3d] %-14s %s"
                    % (record.seq, record.kind, record.fact or "")
                )
    return "\n".join(lines)
