"""repro -- Transaction Datalog: Workflow, Transactions, and Datalog.

A production-quality reproduction of Anthony J. Bonner's PODS 1999 paper
*Workflow, Transactions, and Datalog*.  The package provides:

* :mod:`repro.core` -- the Transaction Datalog language: parser,
  databases, the procedural (small-step) semantics, a full-TD engine
  (semi-decision procedure + workflow simulator), decision procedures for
  the sequential / nonrecursive / fully bounded sublanguages, and the
  sublanguage classifier behind the paper's complexity map;
* :mod:`repro.datalog` -- a classical Datalog substrate (naive and
  seminaive bottom-up evaluation, stratified negation);
* :mod:`repro.machines` -- Turing machines, two-stack machines, counter
  machines, safe Petri nets, AND/OR graphs, and their encodings into TD
  (the constructions behind the paper's complexity theorems);
* :mod:`repro.workflow` -- a workflow modeling layer (tasks, agents,
  combinators) that compiles to TD and simulates the paper's genome-lab
  examples;
* :mod:`repro.lims` -- a synthetic genome-laboratory workload generator
  in the mold of the LabFlow-1 benchmark;
* :mod:`repro.complexity` -- the program families and drivers behind the
  benchmark suite.

Quickstart -- :func:`repro.solve` is the blessed entry point (goals may
be given as strings or formulas); use :func:`repro.select_engine` when
reusing one engine across many goals::

    from repro import parse_program, parse_database, solve

    program = parse_program('''
        transfer(From, To, Amt) <-
            iso(withdraw(From, Amt) * deposit(To, Amt)).
        withdraw(Acct, Amt) <-
            balance(Acct, Bal) * Bal >= Amt *
            del.balance(Acct, Bal) * B2 is Bal - Amt * ins.balance(Acct, B2).
        deposit(Acct, Amt) <-
            balance(Acct, Bal) *
            del.balance(Acct, Bal) * B2 is Bal + Amt * ins.balance(Acct, B2).
    ''')
    db = parse_database("balance(a, 100). balance(b, 10).")
    for solution in solve(program, "transfer(a, b, 30)", db):
        print(solution.database)
"""

from .core import (
    Action,
    Analysis,
    Atom,
    AttemptBudgetExceeded,
    Checkpoint,
    Constant,
    Database,
    Deadline,
    DeadlineExceeded,
    Engine,
    Execution,
    Formula,
    Interpreter,
    NonrecursiveEngine,
    ParseError,
    Program,
    ProgramError,
    ReproError,
    Rule,
    SafetyError,
    Schema,
    SearchBudgetExceeded,
    SequentialEngine,
    Solution,
    Sublanguage,
    TDError,
    UnsupportedProgramError,
    Variable,
    analyze,
    as_goal,
    atom,
    classify,
    conc,
    const,
    format_database,
    format_program,
    format_trace,
    iso,
    parse_atom,
    parse_database,
    parse_goal,
    parse_program,
    parse_rules,
    select_engine,
    seq,
    solve,
    var,
)
from .store import (
    MemoryStore,
    SqliteStore,
    Store,
    StoreBusy,
    StoreCorrupt,
    StoreCrashed,
    StoreError,
    fsck,
    open_store,
    using_store_provider,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Analysis",
    "Atom",
    "AttemptBudgetExceeded",
    "Checkpoint",
    "Constant",
    "Database",
    "Deadline",
    "DeadlineExceeded",
    "Engine",
    "Execution",
    "Formula",
    "Interpreter",
    "MemoryStore",
    "NonrecursiveEngine",
    "ParseError",
    "Program",
    "ProgramError",
    "ReproError",
    "Rule",
    "SafetyError",
    "Schema",
    "SearchBudgetExceeded",
    "SequentialEngine",
    "Solution",
    "SqliteStore",
    "Store",
    "StoreBusy",
    "StoreCorrupt",
    "StoreCrashed",
    "StoreError",
    "Sublanguage",
    "TDError",
    "UnsupportedProgramError",
    "Variable",
    "__version__",
    "analyze",
    "as_goal",
    "atom",
    "classify",
    "conc",
    "const",
    "format_database",
    "format_program",
    "format_trace",
    "fsck",
    "iso",
    "open_store",
    "parse_atom",
    "parse_database",
    "parse_goal",
    "parse_program",
    "parse_rules",
    "select_engine",
    "seq",
    "solve",
    "using_store_provider",
    "var",
]
