"""Rendering workflow specifications: ASCII trees and Graphviz.

Specs are data; designers want to *see* them.  Two renderers:

* :func:`ascii_tree` -- an indented tree of the combinator structure,
  annotated with task roles;
* :func:`to_dot` -- a Graphviz digraph of the control flow (clusters for
  parallel regions, diamonds for choices, loops for iteration).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .model import (
    Choice,
    Consume,
    Emit,
    Iterate,
    Node,
    NonVital,
    ParFlow,
    SeqFlow,
    Step,
    Subflow,
    WaitFor,
    WorkflowSpec,
)

__all__ = ["ascii_tree", "to_dot"]


def _label(node: Node, roles: Dict[str, Optional[str]]) -> str:
    if isinstance(node, Step):
        role = roles.get(node.task)
        return "step %s%s" % (node.task, " [%s]" % role if role else " [auto]")
    if isinstance(node, SeqFlow):
        return "sequence"
    if isinstance(node, ParFlow):
        return "parallel"
    if isinstance(node, Choice):
        return "choice"
    if isinstance(node, Iterate):
        return "iterate until %s" % node.until
    if isinstance(node, NonVital):
        return "non-vital"
    if isinstance(node, Subflow):
        return "subflow %s" % node.workflow
    if isinstance(node, WaitFor):
        return "wait for %s" % node.pred
    if isinstance(node, Emit):
        return "emit %s" % node.pred
    if isinstance(node, Consume):
        return "consume %s" % node.pred
    raise TypeError("unknown node %r" % (node,))


def _children(node: Node) -> Sequence[Node]:
    if isinstance(node, (SeqFlow, ParFlow, Choice)):
        return node.children
    if isinstance(node, (Iterate, NonVital)):
        return (node.body,)
    return ()


def ascii_tree(spec: WorkflowSpec) -> str:
    """The spec's combinator structure as an indented tree."""
    roles = {t.name: t.role for t in spec.tasks}
    lines = ["workflow %s" % spec.name]

    def walk(node: Node, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + _label(node, roles))
        kids = _children(node)
        extension = "    " if is_last else "|   "
        for i, child in enumerate(kids):
            walk(child, prefix + extension, i == len(kids) - 1)

    walk(spec.body, "", True)
    return "\n".join(lines)


def to_dot(spec: WorkflowSpec, all_specs: Sequence[WorkflowSpec] = ()) -> str:
    """A Graphviz digraph of the control flow.

    Boxes are tasks (labelled with their role); diamonds are choices;
    double circles are synchronization points; edges follow sequential
    order, fanning out/in around parallel regions.
    """
    roles = {t.name: t.role for t in spec.tasks}
    for other in all_specs:
        for t in other.tasks:
            roles.setdefault(t.name, t.role)
    counter = itertools.count(1)
    lines = [
        "digraph workflow {",
        "  rankdir=LR;",
        '  start [shape=circle label="" style=filled fillcolor=black width=0.15];',
        '  end   [shape=doublecircle label="" width=0.12];',
    ]

    def fresh(kind: str) -> str:
        return "%s%d" % (kind, next(counter))

    def emit_node(node_id: str, shape: str, label: str) -> None:
        lines.append('  %s [shape=%s label="%s"];' % (node_id, shape, label))

    def walk(node: Node, entry: str) -> str:
        """Wire *node* after graph node *entry*; return its exit node."""
        if isinstance(node, Step):
            node_id = fresh("t")
            role = roles.get(node.task)
            emit_node(node_id, "box", "%s\\n(%s)" % (node.task, role or "auto"))
            lines.append("  %s -> %s;" % (entry, node_id))
            return node_id
        if isinstance(node, SeqFlow):
            current = entry
            for child in node.children:
                current = walk(child, current)
            return current
        if isinstance(node, ParFlow):
            fork = fresh("fork")
            emit_node(fork, "point", "")
            lines.append("  %s -> %s;" % (entry, fork))
            join = fresh("join")
            emit_node(join, "point", "")
            for child in node.children:
                exit_node = walk(child, fork)
                lines.append("  %s -> %s;" % (exit_node, join))
            return join
        if isinstance(node, Choice):
            branch = fresh("choice")
            emit_node(branch, "diamond", "?")
            lines.append("  %s -> %s;" % (entry, branch))
            merge = fresh("merge")
            emit_node(merge, "point", "")
            for child in node.children:
                exit_node = walk(child, branch)
                lines.append("  %s -> %s;" % (exit_node, merge))
            return merge
        if isinstance(node, Iterate):
            loop_entry = fresh("loop")
            emit_node(loop_entry, "point", "")
            lines.append("  %s -> %s;" % (entry, loop_entry))
            exit_node = walk(node.body, loop_entry)
            lines.append(
                '  %s -> %s [style=dashed label="until %s"];'
                % (exit_node, loop_entry, node.until)
            )
            return exit_node
        if isinstance(node, NonVital):
            exit_node = walk(node.body, entry)
            skip = fresh("skip")
            emit_node(skip, "point", "")
            lines.append('  %s -> %s [style=dotted label="skip"];' % (entry, skip))
            lines.append("  %s -> %s;" % (exit_node, skip))
            return skip
        if isinstance(node, Subflow):
            node_id = fresh("sf")
            emit_node(node_id, "box3d", node.workflow)
            lines.append("  %s -> %s;" % (entry, node_id))
            return node_id
        if isinstance(node, (WaitFor, Emit, Consume)):
            node_id = fresh("sync")
            emit_node(node_id, "ellipse", _label(node, roles))
            lines.append("  %s -> %s;" % (entry, node_id))
            return node_id
        raise TypeError("unknown node %r" % (node,))

    final = walk(spec.body, "start")
    lines.append("  %s -> end;" % final)
    lines.append("}")
    return "\n".join(lines)
